"""Experiment SH1: sharded execution on a mixed read/write workload.

Compares 1-shard sequential evaluation against N-shard layouts on the
workload sharding is built for: a repeated query batch with single-record
inserts interleaved, result caches enabled.  The monolithic index flushes
its whole result cache on every mutation, so each batch recomputes every
query; a sharded index invalidates only the owning shard's cache, so the
other N-1 shards answer from cache and each batch recomputes ~1/N of the
work.  The headline comparison (4 shards / 4 workers vs the 1-shard
sequential baseline) is additionally written to
``bench_results/BENCH_shards.json`` with its speedup factor.
"""

from __future__ import annotations

import itertools
import json
import os

import pytest

from repro.bench.protocol import measure
from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.core.shard import ShardedIndex
from repro.data.queries import make_benchmark_queries

DATASET = "zipf-wide"
SIZE = 800
N_QUERIES = 40
ROUNDS_PER_MEASURE = 10

_FRESH = itertools.count()

#: (shards, workers) layouts in the sweep; (1, 1) is the baseline.
LAYOUTS = [(1, 1), (2, 1), (4, 1), (4, 4), (8, 4)]


def _workload():
    records = list(generate_dataset(DATASET, SIZE, seed=0))
    queries = [bench.query for bench in
               make_benchmark_queries(records, N_QUERIES, seed=0)]
    extra = list(generate_dataset(DATASET, 200, seed=99))
    return records, queries, extra


def _build(records, shards: int, workers: int):
    if shards == 1:
        return NestedSetIndex.build(records)
    return ShardedIndex.build(records, shards=shards, workers=workers)


def _make_runner(index, queries, extra):
    """One run = ROUNDS_PER_MEASURE x (query batch + routed insert)."""
    source = itertools.cycle(extra)

    def run() -> int:
        total = 0
        for _ in range(ROUNDS_PER_MEASURE):
            for result in index.query_batch(queries):
                total += len(result)
            _key, tree = next(source)
            index.insert(f"fresh{next(_FRESH)}", tree)
        return total

    return run


@pytest.mark.benchmark(group="shards-mixed")
@pytest.mark.parametrize("shards,workers", LAYOUTS)
def test_mixed_workload(benchmark, figure, shards, workers):
    records, queries, extra = _workload()
    index = _build(records, shards, workers)
    index.enable_result_cache(capacity=4096)
    index.query_batch(queries)          # warm the caches once
    runner = _make_runner(index, queries, extra)
    figure.record(benchmark, f"workers={workers}", shards, runner,
                  rounds=5, queries=N_QUERIES,
                  dataset=f"{DATASET}@{SIZE}",
                  layout=f"{shards}x{workers}")


def test_headline_speedup():
    """Record BENCH_shards.json: 4 shards / 4 workers vs 1-shard sequential.

    Sanity-only threshold here (>1.0): the architectural claim -- partial
    cache invalidation beats whole-cache flushes on mixed workloads -- must
    hold anywhere, while the recorded JSON carries the measured factor.
    """
    records, queries, extra = _workload()
    timings = {}
    for label, shards, workers in [("1-shard sequential", 1, 1),
                                   ("4-shard 4-worker", 4, 4)]:
        index = _build(records, shards, workers)
        index.enable_result_cache(capacity=4096)
        index.query_batch(queries)
        runner = _make_runner(index, queries, extra)
        runner()                        # warmup measurement round
        timings[label] = measure(runner, repeats=7)

    baseline = timings["1-shard sequential"]
    sharded = timings["4-shard 4-worker"]
    speedup = baseline.millis / sharded.millis
    payload = {
        "experiment": "BENCH_shards",
        "workload": {
            "dataset": DATASET, "size": SIZE, "queries": N_QUERIES,
            "rounds_per_measure": ROUNDS_PER_MEASURE,
            "mix": "repeated query batch + 1 routed insert per round, "
                   "result caches enabled",
        },
        "baseline": {"layout": "1 shard, sequential",
                     "mean_ms": round(baseline.millis, 3),
                     "times_s": [round(t, 6) for t in baseline.times]},
        "sharded": {"layout": "4 shards, 4 workers",
                    "mean_ms": round(sharded.millis, 3),
                    "times_s": [round(t, 6) for t in sharded.times]},
        "batch_query_throughput_speedup": round(speedup, 3),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_shards.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert speedup > 1.0, f"sharded layout slower than baseline: {payload}"
