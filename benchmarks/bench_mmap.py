"""Experiment MM1: concurrent read throughput, mmap vs. locked reads.

The pager's mapped read path exists for exactly one reason: clean-page
reads taken from the read-only mapping do not serialize on ``_io_lock``,
so concurrent readers scale with cores instead of convoying behind one
file descriptor.  This experiment measures that, at two levels:

* **pager**: N threads each read the same shuffled set of committed
  pages; aggregate page reads/second, mapped against locked
  (``use_mmap=False``).
* **index**: N threads run containment queries against one disk-backed
  index with the posting caches cleared between queries, so every query
  re-reads its pages; aggregate queries/second for both pager modes,
  with the result sets checked identical.

Results land in ``bench_results/BENCH_mmap.json``.  The guard is
correctness plus a sanity floor: with 4 readers the mapped path must not
fall behind the locked path (its entire purpose is to be no worse single
threaded and better contended).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from repro.bench.reporting import RESULTS_DIR
from repro.core.engine import NestedSetIndex
from repro.storage.pager import Pager

PAGE = 4096
N_PAGES = 1_500
PAGE_ROUNDS = 6
THREADS = (1, 2, 4)

INDEX_RECORDS = 2_500
INDEX_QUERIES = 24
QUERY_ROUNDS = 2


def _run_threads(n_threads: int, work) -> float:
    """Run ``work(thread_no)`` on ``n_threads`` threads; wall seconds."""
    start_gate = threading.Barrier(n_threads + 1)
    threads = [threading.Thread(target=lambda i=i: (start_gate.wait(),
                                                    work(i)))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    start_gate.wait()
    began = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - began


def _pager_throughput(path: str, use_mmap: bool) -> dict[str, float]:
    pager = Pager(path, page_size=PAGE, use_mmap=use_mmap)
    order = list(range(1, N_PAGES + 1))
    random.Random(5).shuffle(order)
    try:
        out = {}
        for n_threads in THREADS:
            def read_all(_thread_no: int) -> None:
                for _ in range(PAGE_ROUNDS):
                    for page_id in order:
                        pager.read(page_id)
            elapsed = _run_threads(n_threads, read_all)
            total = n_threads * PAGE_ROUNDS * N_PAGES
            out[str(n_threads)] = round(total / elapsed, 1)
        return out
    finally:
        pager.close()


def _corpus():
    rng = random.Random(17)
    for i in range(INDEX_RECORDS):
        atoms = {f"a{rng.randrange(40)}" for _ in range(rng.randrange(2, 7))}
        atoms.add("hot")
        yield f"k{i}", atoms


def _queries() -> list:
    rng = random.Random(18)
    return [{"hot", f"a{rng.randrange(40)}", f"a{rng.randrange(40)}"}
            for _ in range(INDEX_QUERIES)]


def _query_throughput(path: str, use_mmap: bool):
    index = NestedSetIndex.open("diskhash", path, use_mmap=use_mmap)
    queries = _queries()
    try:
        baseline = [sorted(index.query(query)) for query in queries]
        out = {}
        for n_threads in THREADS:
            mismatch: list[int] = []

            def run_queries(_thread_no: int) -> None:
                for _ in range(QUERY_ROUNDS):
                    for q_no, query in enumerate(queries):
                        # Cold posting reads every time: the measurement
                        # targets the page read path, not cache hits.
                        index._ifile.cache.clear()
                        index._ifile.block_cache.clear()
                        if sorted(index.query(query)) != baseline[q_no]:
                            mismatch.append(q_no)
                            return
            elapsed = _run_threads(n_threads, run_queries)
            assert not mismatch, \
                f"concurrent result drift (mmap={use_mmap}): {mismatch}"
            total = n_threads * QUERY_ROUNDS * len(queries)
            out[str(n_threads)] = round(total / elapsed, 1)
        return out, baseline
    finally:
        index.close()


def test_concurrent_read_scaling(tmp_path):
    # One committed page file for the pager section ...
    pager_path = str(tmp_path / "pages.pg")
    pager = Pager(pager_path, page_size=PAGE, create=True)
    pager.begin()
    for tag in range(N_PAGES):
        pager.write(pager.allocate(), (b"%08d" % tag).ljust(PAGE, b"\x5A"))
    pager.commit()
    pager.close()

    # ... and one disk-backed index for the query section.
    index_path = str(tmp_path / "corpus.ix")
    NestedSetIndex.build(_corpus(), storage="diskhash",
                         path=index_path).close()

    pages_mapped = _pager_throughput(pager_path, use_mmap=True)
    pages_locked = _pager_throughput(pager_path, use_mmap=False)
    queries_mapped, expected = _query_throughput(index_path, use_mmap=True)
    queries_locked, got = _query_throughput(index_path, use_mmap=False)
    assert got == expected, "mmap and locked paths disagree on results"

    payload = {
        "experiment": "BENCH_mmap",
        "workload": {
            "pager": f"{N_PAGES} pages x {PAGE_ROUNDS} rounds per thread, "
                     f"page_size={PAGE}",
            "index": f"{INDEX_RECORDS} records (diskhash), "
                     f"{INDEX_QUERIES} queries x {QUERY_ROUNDS} rounds per "
                     "thread, caches cleared per query",
            "threads": list(THREADS),
        },
        "page_reads_per_s": {"mmap": pages_mapped, "locked": pages_locked},
        "queries_per_s": {"mmap": queries_mapped, "locked": queries_locked},
        "scaling_mmap_4_over_1": round(
            pages_mapped["4"] / pages_mapped["1"], 2),
        "speedup_mmap_over_locked_4_threads": round(
            pages_mapped["4"] / pages_locked["4"], 2),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_mmap.json"), "w") as handle:
        json.dump(payload, handle, indent=2)

    assert pages_mapped["4"] >= pages_locked["4"], payload
