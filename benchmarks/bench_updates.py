"""Experiment U1: incremental maintenance throughput.

Measures single-record insert cost against full rebuild cost (the offline
alternative the paper uses), tombstone-delete cost, and query cost on an
index carrying tombstones vs after compaction.  Expected shape: an insert
costs orders of magnitude less than a rebuild; deletes are near-free;
tombstones add only mild query overhead that compaction removes.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.workloads import generate_dataset, make_query_runner
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries

SIZE = 2000
DATASET = "zipf-wide"

_FRESH = itertools.count()


@pytest.mark.benchmark(group="updates-write")
@pytest.mark.parametrize("operation", ["insert", "delete", "rebuild"])
def test_write_path(benchmark, figure, operation):
    records = list(generate_dataset(DATASET, SIZE, seed=0))
    index = NestedSetIndex.build(records)
    extra = list(generate_dataset(DATASET, 400, seed=99))

    if operation == "insert":
        source = iter(extra)

        def run() -> None:
            _key, tree = next(source)
            index.insert(f"fresh{next(_FRESH)}", tree)

        rounds = 50
    elif operation == "delete":
        victims = iter([key for key, _tree in records])

        def run() -> None:
            index.delete(next(victims))

        rounds = 50
    else:
        def run() -> None:
            NestedSetIndex.build(records).close()

        rounds = 3
    figure.record(benchmark, "write-op", operation, run, rounds=rounds,
                  dataset=f"{DATASET}@{SIZE}")


@pytest.mark.benchmark(group="updates-read")
@pytest.mark.parametrize("state", ["clean", "tombstoned", "compacted"])
def test_query_with_tombstones(benchmark, figure, state):
    records = list(generate_dataset(DATASET, SIZE, seed=0))
    index = NestedSetIndex.build(records)
    queries = make_benchmark_queries(records, 30, seed=0)
    if state in ("tombstoned", "compacted"):
        for key, _tree in records[:SIZE // 4]:
            index.delete(key)
    if state == "compacted":
        index.compact()
    live = {key for _o, key, _r, _t in index.inverted_file.iter_records()}
    queries = [b for b in queries if b.source_key in live or not b.positive]
    runner = make_query_runner(index, queries, "topdown")
    figure.record(benchmark, "query", state, runner, rounds=5,
                  queries=len(queries), dataset=f"{DATASET}@{SIZE}")
