"""Experiment RP1: read scaling and lag of the primary/replica tier.

Measures what read replicas buy an operator who protects the primary's
write capacity with admission control, using real ``nestcontain serve``
subprocesses (each server gets its own interpreter -- in-process
threads would share one GIL and measure nothing):

* **primary-only** -- a write-protected primary (``--max-inflight 2``,
  the slots reserved for the ingest stream) serves 6 reader threads
  while a writer inserts continuously.  Readers see ``overloaded``
  rejections and retry with a small backoff; accepted read throughput
  is the baseline.
* **2 replicas** -- the same protected primary plus two
  ``--replicate-from`` replicas; the identical reader/writer mix runs
  with reads routed to the replicas.  Replica lag is sampled
  throughout, and after the writer stops the replicas must converge
  (``lag_groups == 0``) within a deadline -- the lag bound.

Two gates are enforced and written to
``bench_results/BENCH_replicate.json``: reads at 2 replicas must reach
**>= 1.8x** the protected primary's accepted read throughput, and both
replicas must drain their lag to zero after ingest stops.  On a
multi-core host the unconstrained (no admission cap) ratio also scales;
this container pins one CPU, so the capacity comparison is the
portable form of the claim.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time

from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.data.io import save_collection_file
from repro.server import ServiceClient, ServiceError

DATASET = "zipf-wide"
SIZE = 400
N_READERS = 6
MEASURE_SECONDS = 6.0
PRIMARY_MAX_INFLIGHT = 2
CONVERGE_DEADLINE_S = 30.0
GATE_RATIO = 1.8

SERVE_BANNER = re.compile(r":(\d+) \(")


def _start_server(run, env, index_path, *extra):
    proc = subprocess.Popen(
        run + ["serve", index_path, "--port", "0", "--workers", "2",
               "--batch-window-ms", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    for line in proc.stdout:
        if line.startswith("bootstrapped"):
            continue
        match = SERVE_BANNER.search(line)
        if match:
            return proc, int(match.group(1))
    raise AssertionError(f"server died during startup (exit "
                         f"{proc.poll()})")


def _measure(read_ports, write_port, probes, ingest_atom,
             seconds=MEASURE_SECONDS, lag_ports=()):
    """One mixed window: continuous writes, saturating routed reads.

    Returns accepted/rejected read rates, the write rate, and lag
    samples from ``lag_ports`` taken twice a second during the window.
    """
    accepted = [0] * N_READERS
    rejected = [0] * N_READERS
    writes = [0]
    lag_samples: list[dict] = []
    stop_at = time.monotonic() + seconds
    stop_writer = threading.Event()

    def writer() -> None:
        with ServiceClient(port=write_port) as client:
            i = 0
            while not stop_writer.is_set():
                try:
                    client.insert(f"w{time.monotonic_ns()}_{i}",
                                  "{%s, {w%d}}" % (ingest_atom, i % 5))
                    i += 1
                except ServiceError:
                    time.sleep(0.005)   # admission-capped: yield a slot
            writes[0] = i

    def reader(slot: int) -> None:
        with ServiceClient(port=read_ports[slot % len(read_ports)]) \
                as client:
            j = 0
            while time.monotonic() < stop_at:
                try:
                    client.query(probes[j % len(probes)])
                    accepted[slot] += 1
                except ServiceError as exc:
                    if exc.code != "overloaded":
                        raise
                    rejected[slot] += 1
                    time.sleep(0.002)
                j += 1

    def lag_sampler() -> None:
        clients = [ServiceClient(port=port) for port in lag_ports]
        try:
            while time.monotonic() < stop_at:
                for client in clients:
                    lag = client.stats()["server"].get("replica_lag")
                    if lag is not None:
                        lag_samples.append(lag)
                time.sleep(0.5)
        finally:
            for client in clients:
                client.close()

    threads = [threading.Thread(target=writer)] + \
        [threading.Thread(target=reader, args=(slot,))
         for slot in range(N_READERS)] + \
        ([threading.Thread(target=lag_sampler)] if lag_ports else [])
    for thread in threads:
        thread.start()
    for thread in threads[1:]:
        thread.join()
    stop_writer.set()
    threads[0].join()
    return {
        "read_qps": round(sum(accepted) / seconds, 1),
        "rejected_per_s": round(sum(rejected) / seconds, 1),
        "write_qps": round(writes[0] / seconds, 1),
        "lag_samples": lag_samples,
    }


def _wait_drained(port: int) -> float:
    """Seconds until this replica reports zero lag (post-ingest)."""
    start = time.monotonic()
    deadline = start + CONVERGE_DEADLINE_S
    with ServiceClient(port=port) as client:
        while True:
            lag = client.stats()["server"]["replica_lag"]
            if lag["lag_groups"] == 0 and lag["status"] == "tailing":
                return round(time.monotonic() - start, 3)
            assert time.monotonic() < deadline, \
                f"replica :{port} never drained its lag: {lag}"
            time.sleep(0.1)


def test_replica_read_scaling():
    """Record BENCH_replicate.json; enforce the 1.8x and lag gates."""
    records = list(generate_dataset(DATASET, SIZE, seed=5))
    atoms = sorted(records[0][1].atoms)
    probes = ["{%s}" % atom for atom in atoms[:4]]

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    run = [sys.executable, "-m", "repro.cli"]

    with tempfile.TemporaryDirectory(prefix="bench-repl-") as workdir:
        collection = os.path.join(workdir, "bench.nsets")
        primary_path = os.path.join(workdir, "primary.idx")
        save_collection_file(records, collection)
        subprocess.run(run + ["index", collection, "-o", primary_path],
                       check=True, env=env, stdout=subprocess.DEVNULL)

        procs = []
        try:
            primary, pport = _start_server(
                run, env, primary_path,
                "--max-inflight", str(PRIMARY_MAX_INFLIGHT))
            procs.append(primary)

            baseline = _measure([pport], pport, probes, atoms[0])

            replica_ports = []
            for i in (1, 2):
                replica_path = os.path.join(workdir, f"replica{i}.idx")
                proc, port = _start_server(
                    run, env, replica_path,
                    "--replicate-from", f"127.0.0.1:{pport}",
                    "--replica-id", f"bench-r{i}")
                procs.append(proc)
                replica_ports.append(port)

            fleet = _measure(replica_ports, pport, probes, atoms[0],
                             lag_ports=replica_ports)
            drain_s = [_wait_drained(port) for port in replica_ports]
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()

    lag_samples = fleet.pop("lag_samples")
    baseline.pop("lag_samples")
    ratio = fleet["read_qps"] / baseline["read_qps"]
    max_lag_groups = max((s["lag_groups"] for s in lag_samples),
                         default=0)
    finite_lag_s = [s["lag_seconds"] for s in lag_samples
                    if s["lag_seconds"] != float("inf")]

    payload = {
        "experiment": "BENCH_replicate",
        "workload": {
            "dataset": DATASET, "size": SIZE, "readers": N_READERS,
            "window_s": MEASURE_SECONDS,
            "primary_max_inflight": PRIMARY_MAX_INFLIGHT,
            "mix": "continuous single-record inserts on the primary "
                   "racing saturating point reads; the baseline reads "
                   "from the write-protected primary, the fleet run "
                   "routes the same readers to 2 replicas",
        },
        "primary_only": baseline,
        "two_replicas": fleet,
        "headline": {
            "read_scaling_x": round(ratio, 3),
            "gate_ratio": GATE_RATIO,
            "max_lag_groups_under_ingest": max_lag_groups,
            "max_lag_seconds_under_ingest":
                round(max(finite_lag_s), 3) if finite_lag_s else 0.0,
            "lag_samples": len(lag_samples),
            "drain_after_ingest_s": drain_s,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_replicate.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(json.dumps(payload["headline"], indent=2))

    assert ratio >= GATE_RATIO, (
        f"2 replicas reached only {ratio:.2f}x the protected primary's "
        f"read throughput (gate {GATE_RATIO}x): {payload['headline']}")
    assert all(s <= CONVERGE_DEADLINE_S for s in drain_s), drain_s


if __name__ == "__main__":
    test_replica_read_scaling()
