"""Experiment WAL1: write-ahead-log overhead on a mixed disk workload.

Runs the shards-style mixed workload (repeated query batch with an
insert and a delete interleaved per round) against a disk-backed index
with journaling on and off.  Every mutation with the WAL enabled pays
one extra fsync'd group write before its pages reach the main file; the
acceptance bar is that the whole mixed workload stays within 15% of the
unjournaled baseline.  The headline ratio is written to
``bench_results/BENCH_wal.json``.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import tempfile

import pytest

from repro.bench.protocol import measure
from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries

DATASET = "zipf-wide"
SIZE = 400
N_QUERIES = 20
ROUNDS_PER_MEASURE = 8
STORAGE = "diskhash"

_FRESH = itertools.count()


def _workload():
    records = list(generate_dataset(DATASET, SIZE, seed=0))
    queries = [bench.query for bench in
               make_benchmark_queries(records, N_QUERIES, seed=0)]
    extra = list(generate_dataset(DATASET, 200, seed=99))
    return records, queries, extra


def _build(records, path: str, wal: bool) -> NestedSetIndex:
    return NestedSetIndex.build(records, storage=STORAGE, path=path,
                                wal=wal)


def _make_runner(index, queries, extra):
    """One run = ROUNDS x (query batch + insert + delete).

    Each inserted record is deleted one round later, so the index size
    stays flat and every round pays two journaled mutations.
    """
    source = itertools.cycle(extra)
    pending: list[str] = []

    def run() -> int:
        total = 0
        for _ in range(ROUNDS_PER_MEASURE):
            for query in queries:
                total += len(index.query(query))
            _key, tree = next(source)
            key = f"fresh{next(_FRESH)}"
            index.insert(key, tree)
            pending.append(key)
            if len(pending) > 1:
                index.delete(pending.pop(0))
        return total

    return run


@pytest.mark.benchmark(group="wal-mixed")
@pytest.mark.parametrize("wal", [False, True], ids=["no-wal", "wal"])
def test_mixed_workload(benchmark, figure, tmp_path, wal):
    records, queries, extra = _workload()
    index = _build(records, str(tmp_path / "idx.db"), wal)
    runner = _make_runner(index, queries, extra)
    figure.record(benchmark, "journaled" if wal else "unjournaled",
                  int(wal), runner, rounds=5, queries=N_QUERIES,
                  dataset=f"{DATASET}@{SIZE}", storage=STORAGE)
    index.close()


def test_overhead_ratio():
    """Record BENCH_wal.json: journaled vs unjournaled mixed workload.

    Compares min-of-repeats (the least noisy estimator for a workload
    dominated by deterministic work) and asserts the journaled run stays
    within the 15% overhead budget.
    """
    records, queries, extra = _workload()
    workdir = tempfile.mkdtemp(prefix="bench-wal-")
    timings = {}
    try:
        for label, wal in [("no-wal", False), ("wal", True)]:
            path = os.path.join(workdir, f"idx-{label}.db")
            index = _build(records, path, wal)
            runner = _make_runner(index, queries, extra)
            runner()                    # warmup measurement round
            timings[label] = measure(runner, repeats=7)
            index.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    baseline = timings["no-wal"]
    journaled = timings["wal"]
    ratio = min(journaled.times) / min(baseline.times)
    payload = {
        "experiment": "BENCH_wal",
        "workload": {
            "dataset": DATASET, "size": SIZE, "queries": N_QUERIES,
            "rounds_per_measure": ROUNDS_PER_MEASURE,
            "storage": STORAGE,
            "mix": "repeated query batch + 1 insert + 1 delete per "
                   "round (2 journaled mutations)",
        },
        "baseline": {"layout": "wal disabled",
                     "mean_ms": round(baseline.millis, 3),
                     "times_s": [round(t, 6) for t in baseline.times]},
        "journaled": {"layout": "wal enabled (fsync per mutation)",
                      "mean_ms": round(journaled.millis, 3),
                      "times_s": [round(t, 6) for t in journaled.times]},
        "wal_overhead_ratio": round(ratio, 4),
        "budget": 1.15,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_wal.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert ratio < 1.15, f"WAL overhead above 15% budget: {payload}"
