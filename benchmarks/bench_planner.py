"""Experiment P1: evaluation-order planning ablation (future work 1/5).

The strict top-down algorithm prunes later siblings by the survivors of
earlier ones, so sibling order matters when a query has several internal
children of very different selectivity.  Two workloads:

* the paper's sampled-record workload (few siblings -- ordering barely
  matters; kept as the control), and
* wide conjunctive *branching* queries (an atom-free root over ``branch``
  record-sampled subtrees -- the planning regime).

Expected shape: on branching queries ``selective-first`` < ``text`` <
``bulky-first``; on the sampled workload all three coincide.
"""

from __future__ import annotations

import pytest

from repro.core.planner import Planner
from repro.core.topdown import topdown_match_nodes
from repro.data.queries import make_branching_queries

SIZE = 4000
THETA = 0.9
DATASET = "zipf-wide"


def _run_workload(queries, ifile, order) -> int:
    total = 0
    for query in queries:
        total += len(topdown_match_nodes(query, ifile, child_order=order))
    return total


@pytest.mark.benchmark(group="planner")
@pytest.mark.parametrize("workload_kind", ["sampled", "branching"])
@pytest.mark.parametrize("strategy",
                         ["selective-first", "text", "bulky-first"])
def test_planner(benchmark, workloads, figure, workload_kind, strategy):
    workload = workloads.get(DATASET, SIZE, n_queries=40, theta=THETA)
    workload.index.set_cache("frequency")
    ifile = workload.index.inverted_file
    planner = Planner(workload.index.collection_stats(), strategy)
    order = planner.as_child_order()
    if workload_kind == "sampled":
        queries = [bench.query for bench in workload.queries]
    else:
        queries = make_branching_queries(workload.records, 40, seed=1,
                                         branch=4)

    def run() -> int:
        return _run_workload(queries, ifile, order)

    figure.record(benchmark, workload_kind, strategy, run,
                  queries=len(queries), dataset=f"{DATASET}@{SIZE}")
