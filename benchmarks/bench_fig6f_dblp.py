"""Experiment 3 (Fig 6f): DBLP collection, increasing DB size.

Paper shape: see DESIGN.md experiment F6f and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "dblp"
SIZES = [500,1000,2000,4000]
N_QUERIES = 30


@pytest.mark.benchmark(group="fig6f-dblp")
@figure_params(SIZES)
def test_fig6f(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
