"""Experiment M1: the data-model zoo under query load (future work 2).

Costs of containment at the three abstraction levels over the same
collection: plain set queries on the index, and bag / sequence queries
answered by filter-verify through the set index versus a naive scan.
Expected shape: the set index absorbs most of the richer models' cost --
filter-verify stays within a small factor of plain set queries and far
below the naive scans.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.bags import NestedBag, bag_filter_verify, bag_reference_query
from repro.core.engine import NestedSetIndex
from repro.core.seqs import NestedSeq, seq_filter_verify, seq_reference_query

SIZE = 1000
DATASET = "zipf-wide"
N_QUERIES = 20

_STATE = None


def _state():
    global _STATE
    if _STATE is None:
        records = list(generate_dataset(DATASET, SIZE, seed=0))
        # Bag/seq views of the same data (sets are already deduped, so
        # multiplicities are 1 -- the *costs* are what this measures).
        bags = {key: NestedBag.from_obj(tree) for key, tree in records}
        seqs = {key: NestedSeq.from_obj(_linearize(tree))
                for key, tree in records}
        index = NestedSetIndex.build(records, cache="frequency")
        queries = [tree for _key, tree in records[:N_QUERIES]]
        _STATE = (records, bags, seqs, index, queries)
    return _STATE


def _linearize(tree):
    members = sorted(tree.atoms, key=str)
    members += [_linearize(c) for c in
                sorted(tree.children, key=lambda c: c.to_text())]
    return members


@pytest.mark.benchmark(group="data-models")
@pytest.mark.parametrize("mode", [
    "set-index", "bag-filter-verify", "bag-naive",
    "seq-filter-verify", "seq-naive",
])
def test_models(benchmark, figure, mode):
    records, bags, seqs, index, queries = _state()

    if mode == "set-index":
        def run() -> int:
            return sum(len(index.query(query)) for query in queries)
    elif mode == "bag-filter-verify":
        bag_queries = [NestedBag.from_obj(q) for q in queries]

        def run() -> int:
            return sum(len(bag_filter_verify(index, bags, query))
                       for query in bag_queries)
    elif mode == "bag-naive":
        bag_queries = [NestedBag.from_obj(q) for q in queries]

        def run() -> int:
            return sum(len(bag_reference_query(bags.items(), query))
                       for query in bag_queries)
    elif mode == "seq-filter-verify":
        seq_queries = [NestedSeq.from_obj(_linearize(q)) for q in queries]

        def run() -> int:
            return sum(len(seq_filter_verify(index, seqs, query))
                       for query in seq_queries)
    else:
        seq_queries = [NestedSeq.from_obj(_linearize(q)) for q in queries]

        def run() -> int:
            return sum(len(seq_reference_query(seqs.items(), query))
                       for query in seq_queries)

    rounds = 3 if "naive" in mode else 5
    figure.record(benchmark, "containment", mode, run, rounds=rounds,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
