"""Experiment SV1: served throughput -- micro-batching vs per-request.

Drives a real :class:`~repro.server.ServerThread` over loopback with 1,
4, and 16 concurrent blocking clients, at several micro-batch windows
(0 ms = per-request dispatch, the baseline).  Every client issues the
same benchmark query mix, so a wider window lets the server coalesce
concurrent arrivals into single ``engine.query_batch`` calls that share
the bottom-up subquery memo -- the coalesce-ratio column shows how many
queries each engine call absorbed.

An in-process sequential pass over the identical mix is measured too,
bounding what the protocol + scheduling layers cost.  The headline
comparison (16 clients, widest window vs 0 ms) is written to
``bench_results/BENCH_serve.json`` and must favour batching.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries
from repro.server import ServerThread, ServiceClient

DATASET = "zipf-wide"
SIZE = 600
N_QUERIES = 24
CLIENT_COUNTS = (1, 4, 16)
#: Micro-batch windows under test; 0 ms is the per-request baseline.
WINDOWS_MS = (0.0, 2.0, 5.0)
ROUNDS = 3


def _workload():
    records = list(generate_dataset(DATASET, SIZE, seed=3))
    queries = [bench.query for bench in
               make_benchmark_queries(records, N_QUERIES, seed=3)]
    return records, [query.to_text() for query in queries]


def _serve_round(port: int, n_clients: int,
                 queries: list[str]) -> float:
    """All clients issue the full mix once; returns elapsed seconds."""
    barrier = threading.Barrier(n_clients + 1)
    errors: list[BaseException] = []

    def client_main() -> None:
        try:
            with ServiceClient(port=port) as client:
                barrier.wait()
                for query in queries:
                    client.query(query)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            raise

    threads = [threading.Thread(target=client_main)
               for _ in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()                    # all connected: start the clock
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _measure_served(index, n_clients: int, window_ms: float,
                    queries: list[str]) -> dict:
    # batch_max tuned to the expected concurrency: a full batch flushes
    # immediately, so the window only taxes rounds with stragglers.
    with ServerThread(index, batch_window_ms=window_ms, workers=4,
                      max_inflight=256, batch_max=max(2, n_clients),
                      close_index_on_drain=False) as handle:
        _serve_round(handle.port, n_clients, queries)   # warmup
        best = min(_serve_round(handle.port, n_clients, queries)
                   for _ in range(ROUNDS))
        stats = handle.server.metrics.snapshot()
    total_queries = n_clients * len(queries)
    return {
        "clients": n_clients,
        "batch_window_ms": window_ms,
        "round_seconds": round(best, 6),
        "queries_per_second": round(total_queries / best, 1),
        "coalesce_ratio": stats["coalesce_ratio"],
    }


def test_served_throughput_grid():
    """Record BENCH_serve.json; batching must beat per-request dispatch.

    The threshold is sanity-only (>1.0x at 16 clients): coalescing
    concurrent arrivals into one engine batch amortizes dispatch and
    shares subquery work, so it must not *lose* to per-request mode;
    the JSON carries the measured factors.
    """
    records, queries = _workload()
    index = NestedSetIndex.build(records)
    try:
        in_process = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for query in queries:
                index.query(query)
            in_process.append(time.perf_counter() - start)
        in_process_qps = len(queries) / min(in_process)

        grid = [_measure_served(index, n_clients, window_ms, queries)
                for n_clients in CLIENT_COUNTS
                for window_ms in WINDOWS_MS]
    finally:
        index.close()

    def cell(clients: int, window_ms: float) -> dict:
        return next(row for row in grid
                    if row["clients"] == clients
                    and row["batch_window_ms"] == window_ms)

    headline_clients = max(CLIENT_COUNTS)
    per_request = cell(headline_clients, 0.0)
    batched = max((cell(headline_clients, w) for w in WINDOWS_MS[1:]),
                  key=lambda row: row["queries_per_second"])
    speedup = (batched["queries_per_second"]
               / per_request["queries_per_second"])

    payload = {
        "experiment": "BENCH_serve",
        "workload": {
            "dataset": DATASET, "size": SIZE, "queries": N_QUERIES,
            "rounds": ROUNDS,
            "mix": "every client issues the full query mix per round "
                   "over its own connection",
        },
        "in_process_sequential_qps": round(in_process_qps, 1),
        "grid": grid,
        "headline": {
            "clients": headline_clients,
            "per_request_qps": per_request["queries_per_second"],
            "batched_qps": batched["queries_per_second"],
            "batched_window_ms": batched["batch_window_ms"],
            "batched_coalesce_ratio": batched["coalesce_ratio"],
            "batching_speedup": round(speedup, 3),
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_serve.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    assert batched["coalesce_ratio"] > 1.0, payload["headline"]
    assert speedup > 1.0, (
        f"batched serving slower than per-request: {payload['headline']}")
