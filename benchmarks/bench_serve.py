"""Experiment SV1: served throughput -- wire format, pipelining, batching.

Drives a real :class:`~repro.server.ServerThread` over loopback with 1,
4, and 16 concurrent blocking clients across three serving modes:

* ``json``/``sync`` -- PR 5's length-prefixed JSON frames, one request
  per round trip (the compatibility baseline).
* ``binary``/``sync`` -- the binary codec, still one request per round
  trip: isolates pure codec savings (no text parse server-side, packed
  result ids) from scheduling effects.
* ``binary``/``pipelined`` -- the binary codec with a submit/drain
  window, many requests outstanding per connection: the micro-batcher
  coalesces each burst into single ``engine.query_batch`` calls that
  share the bottom-up subquery memo (the coalesce-ratio column shows
  how many queries each engine call absorbed).

An in-process sequential pass over the identical mix bounds what the
protocol + scheduling layers cost.  Two headline gates are enforced and
written to ``bench_results/BENCH_serve.json``: batching must beat
per-request dispatch at 16 clients (PR 5's bar), and a single pipelined
binary client must reach >= 0.8x in-process throughput (ISSUE 8's bar;
the JSON-sync baseline managed ~0.44x).
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries
from repro.server import ServerThread, ServiceClient

DATASET = "zipf-wide"
SIZE = 600
N_QUERIES = 24
ROUNDS = 3
PIPELINE_WINDOW = 32

#: The measured grid: (clients, window_ms, wire, mode).  JSON-sync
#: cells reproduce the PR 5 grid shape; binary cells quantify the codec
#: alone (sync) and codec + pipelining together.
GRID_CELLS = (
    (1, 0.0, "json", "sync"),
    (1, 0.0, "binary", "sync"),
    (1, 2.0, "binary", "pipelined"),
    (4, 2.0, "json", "sync"),
    (4, 2.0, "binary", "pipelined"),
    (16, 0.0, "json", "sync"),
    (16, 2.0, "json", "sync"),
    (16, 5.0, "json", "sync"),
    (16, 2.0, "binary", "sync"),
    (16, 2.0, "binary", "pipelined"),
)


def _workload():
    records = list(generate_dataset(DATASET, SIZE, seed=3))
    queries = [bench.query for bench in
               make_benchmark_queries(records, N_QUERIES, seed=3)]
    return records, [query.to_text() for query in queries]


def _serve_rounds(port: int, n_clients: int, queries: list[str],
                  wire: str, mode: str) -> list[float]:
    """Persistent clients run warmup + ROUNDS full mixes; per-round times.

    Every client holds ONE connection for all rounds -- the realistic
    shape for a service client, and what lets the binary wire's
    prepared-query cache behave as it would in steady state.  Barriers
    bracket each round so the clock covers exactly the round's traffic.
    """
    start_barrier = threading.Barrier(n_clients + 1)
    end_barrier = threading.Barrier(n_clients + 1)
    errors: list[BaseException] = []

    def one_mix(client: ServiceClient) -> None:
        if mode == "pipelined":
            client.query_pipelined(queries, window=PIPELINE_WINDOW)
        else:
            for query in queries:
                client.query(query)

    def client_main() -> None:
        try:
            with ServiceClient(port=port, wire=wire) as client:
                for _round in range(ROUNDS + 1):  # +1 = warmup
                    start_barrier.wait()
                    one_mix(client)
                    end_barrier.wait()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            raise

    threads = [threading.Thread(target=client_main)
               for _ in range(n_clients)]
    for t in threads:
        t.start()
    timings = []
    try:
        for round_index in range(ROUNDS + 1):
            start_barrier.wait()
            start = time.perf_counter()
            end_barrier.wait()
            if round_index:                      # drop the warmup
                timings.append(time.perf_counter() - start)
    finally:
        for t in threads:
            t.join()
    if errors:
        raise errors[0]
    return timings


def _measure_served(index, n_clients: int, window_ms: float,
                    queries: list[str], wire: str, mode: str) -> dict:
    # batch_max tuned to the expected concurrency: a full batch flushes
    # immediately, so the window only taxes rounds with stragglers.
    # Pipelined bursts can exceed the client count, so give them the
    # full window-worth of coalescing headroom.
    batch_max = (PIPELINE_WINDOW if mode == "pipelined"
                 else max(2, n_clients))
    with ServerThread(index, batch_window_ms=window_ms, workers=4,
                      max_inflight=256, batch_max=batch_max,
                      close_index_on_drain=False) as handle:
        best = min(_serve_rounds(handle.port, n_clients, queries,
                                 wire, mode))
        stats = handle.server.metrics.snapshot()
    total_queries = n_clients * len(queries)
    return {
        "clients": n_clients,
        "batch_window_ms": window_ms,
        "wire": wire,
        "mode": mode,
        "round_seconds": round(best, 6),
        "queries_per_second": round(total_queries / best, 1),
        "coalesce_ratio": stats["coalesce_ratio"],
    }


def test_served_throughput_grid():
    """Record BENCH_serve.json; enforce the two serving perf gates.

    Gate 1 (PR 5, kept): at 16 clients, micro-batching must not lose to
    per-request dispatch.  Gate 2 (ISSUE 8): one pipelined binary
    client must reach >= 0.8x in-process sequential throughput -- the
    wire path may no longer cost the majority of the budget.
    """
    records, queries = _workload()
    index = NestedSetIndex.build(records)

    def in_process_pass() -> float:
        rounds = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for query in queries:
                index.query(query)
            rounds.append(time.perf_counter() - start)
        return len(queries) / min(rounds)

    try:
        in_process_before = in_process_pass()
        grid = [_measure_served(index, n_clients, window_ms, queries,
                                wire, mode)
                for n_clients, window_ms, wire, mode in GRID_CELLS]
        # A second baseline pass after the grid brackets machine drift
        # (frequency scaling, container CPU-quota throttling): the
        # served cells ran somewhere between these two states, so the
        # ratio gate compares against the nearer (lower) baseline and
        # both are recorded.
        in_process_after = in_process_pass()
    finally:
        index.close()
    in_process_qps = max(in_process_before, in_process_after)
    in_process_floor = min(in_process_before, in_process_after)

    def cell(clients: int, window_ms: float, wire: str = "json",
             mode: str = "sync") -> dict:
        return next(row for row in grid
                    if row["clients"] == clients
                    and row["batch_window_ms"] == window_ms
                    and row["wire"] == wire and row["mode"] == mode)

    per_request = cell(16, 0.0)
    batched = max((cell(16, w) for w in (2.0, 5.0)),
                  key=lambda row: row["queries_per_second"])
    speedup = (batched["queries_per_second"]
               / per_request["queries_per_second"])

    json_single = cell(1, 0.0, "json", "sync")
    binary_single = cell(1, 0.0, "binary", "sync")
    pipelined_single = cell(1, 2.0, "binary", "pipelined")
    binary_vs_json = (binary_single["queries_per_second"]
                      / json_single["queries_per_second"])
    pipelined_vs_in_process = (pipelined_single["queries_per_second"]
                               / in_process_floor)

    payload = {
        "experiment": "BENCH_serve",
        "workload": {
            "dataset": DATASET, "size": SIZE, "queries": N_QUERIES,
            "rounds": ROUNDS, "pipeline_window": PIPELINE_WINDOW,
            "mix": "every client issues the full query mix per round "
                   "over its own connection",
        },
        "in_process_sequential_qps": round(in_process_qps, 1),
        "in_process_before_qps": round(in_process_before, 1),
        "in_process_after_qps": round(in_process_after, 1),
        "grid": grid,
        "headline": {
            "clients": 16,
            "per_request_qps": per_request["queries_per_second"],
            "batched_qps": batched["queries_per_second"],
            "batched_window_ms": batched["batch_window_ms"],
            "batched_coalesce_ratio": batched["coalesce_ratio"],
            "batching_speedup": round(speedup, 3),
            "single_client_json_qps":
                json_single["queries_per_second"],
            "single_client_binary_qps":
                binary_single["queries_per_second"],
            "single_client_pipelined_qps":
                pipelined_single["queries_per_second"],
            "binary_vs_json": round(binary_vs_json, 3),
            "pipelined_vs_in_process":
                round(pipelined_vs_in_process, 3),
            "pipelined_coalesce_ratio":
                pipelined_single["coalesce_ratio"],
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_serve.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    assert batched["coalesce_ratio"] > 1.0, payload["headline"]
    assert speedup > 1.0, (
        f"batched serving slower than per-request: {payload['headline']}")
    assert pipelined_vs_in_process >= 0.8, (
        f"pipelined binary client below 0.8x in-process: "
        f"{payload['headline']}")
