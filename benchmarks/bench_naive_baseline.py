"""Experiment N1: naive per-record scan vs the index algorithms.

Section 3, remark (1): applying an off-the-shelf subtree homomorphism
check to every (q, s) pair "would be substantially more expensive than
processing S in bulk".  Expected shape: naive is orders of magnitude
slower than either inverted-file algorithm, and the gap widens with
database size.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner

DATASET = "zipf-wide"
SIZES = [500, 2000]
N_QUERIES = 10


@pytest.mark.benchmark(group="naive-baseline")
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", ["naive", "topdown", "bottomup"])
def test_naive_vs_index(benchmark, workloads, figure, size, algorithm):
    workload = workloads.get(DATASET, size, n_queries=N_QUERIES)
    workload.index.set_cache(None)
    runner = make_query_runner(workload.index, workload.queries, algorithm)
    rounds = 3 if algorithm == "naive" else 5
    figure.record(benchmark, algorithm, size, runner, rounds=rounds,
                  queries=N_QUERIES, dataset=DATASET)
