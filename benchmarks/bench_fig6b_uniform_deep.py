"""Experiment 1 (Fig 6b): uniform deep synthetic, increasing DB size.

Paper shape: see DESIGN.md experiment F6b and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "uniform-deep"
SIZES = [250,500,1000]
N_QUERIES = 20


@pytest.mark.benchmark(group="fig6b-uniform-deep")
@figure_params(SIZES)
def test_fig6b(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
