"""Experiment 1 (Fig 6a): uniform wide synthetic, increasing DB size.

Paper shape: see DESIGN.md experiment F6a and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "uniform-wide"
SIZES = [1000,2000,4000,8000]
N_QUERIES = 50


@pytest.mark.benchmark(group="fig6a-uniform-wide")
@figure_params(SIZES)
def test_fig6a(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
