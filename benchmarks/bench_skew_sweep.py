"""Experiment S1: effect of the Zipf skew factor theta (Section 5.1).

The paper generates skewed data with theta in {0.5, 0.7, 0.9} (the body
reports theta=0.7; the full version carries the rest).  Expected shape:
query cost grows with theta -- hotter atoms mean longer posting lists --
and the caching win grows with it.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner

DATASET = "zipf-wide"
SIZE = 4000
N_QUERIES = 40
THETAS = [0.5, 0.7, 0.9]


@pytest.mark.benchmark(group="skew-sweep")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("algorithm,policy", [
    ("topdown", None), ("topdown", "frequency"),
    ("bottomup", None), ("bottomup", "frequency"),
], ids=["topdown", "topdown+cache", "bottomup", "bottomup+cache"])
def test_skew(benchmark, workloads, figure, theta, algorithm, policy):
    workload = workloads.get(DATASET, SIZE, n_queries=N_QUERIES,
                             theta=theta)
    workload.index.set_cache(policy)
    runner = make_query_runner(workload.index, workload.queries, algorithm)
    label = algorithm + ("+cache" if policy else "")
    figure.record(benchmark, label, theta, runner,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
