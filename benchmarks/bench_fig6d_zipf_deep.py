"""Experiment 2 (Fig 6d): skewed (theta=0.7) deep synthetic, increasing DB size.

Paper shape: see DESIGN.md experiment F6d and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "zipf-deep"
SIZES = [250,500,1000]
N_QUERIES = 20


@pytest.mark.benchmark(group="fig6d-zipf-deep")
@figure_params(SIZES)
def test_fig6d(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
