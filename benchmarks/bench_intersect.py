"""Experiment IX1: skewed intersection, blocked vs. legacy postings.

Candidate generation intersects the rarest atom's list with much longer
ones; the list-length *ratio* is what the block-compressed format
exploits.  The workload indexes flat records that all contain one hot
atom (list length = collection size) plus a rare marker atom present in
every ``ratio``-th record, and times
``InvertedFile.intersect_atoms([hot, rare])`` at ratios 1:10, 1:100 and
1:1000 on two physical layouts of the *same* collection:

* ``legacy``  -- plain single-value lists (``block_size=0``): the hot
  list is fully decoded and its heads materialized as a set per query;
* ``blocked`` -- the block-compressed format: the rare list gallops
  through the hot list's skip directory and decodes only the blocks its
  probes land in.

Caches are cleared before every run, so the comparison is cold-decode
against cold-decode.  The headline 1:1000 comparison is written to
``bench_results/BENCH_intersect.json`` with its speedup factor.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.protocol import measure
from repro.bench.reporting import RESULTS_DIR
from repro.core.invfile import InvertedFile

SIZE = 20_000
RATIOS = (10, 100, 1000)
HOT = "hot"


def _records():
    for i in range(SIZE):
        atoms = {HOT, f"u{i % 50}"}
        for ratio in RATIOS:
            if i % ratio == 0:
                atoms.add(f"r{ratio}")
        yield f"k{i}", atoms


def _build(block_size: int | None) -> InvertedFile:
    from repro.core.model import NestedSet
    prepared = ((key, NestedSet.from_obj(atoms))
                for key, atoms in _records())
    return InvertedFile.build(prepared, block_size=block_size)


def _make_runner(ifile: InvertedFile, ratio: int):
    atoms = [HOT, f"r{ratio}"]

    def run() -> int:
        # Cold decode every round: the point under test is codec work,
        # not cache residency.
        ifile.cache.clear()
        ifile.block_cache.clear()
        return len(ifile.intersect_atoms(atoms))

    return run


@pytest.mark.benchmark(group="intersect-skew")
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("layout", ["legacy", "blocked"])
def test_skew_sweep(benchmark, figure, layout, ratio):
    ifile = _build(0 if layout == "legacy" else None)
    runner = _make_runner(ifile, ratio)
    figure.record(benchmark, layout, ratio, runner,
                  queries=1, dataset=f"flat-skew@{SIZE}",
                  layout=layout)


def test_headline_speedup():
    """Record BENCH_intersect.json across the skew sweep.

    The acceptance threshold lives at the most skewed point: blocked
    intersection must beat the legacy full-decode by >= 2x at 1:1000
    (it decodes ~20 blocks of the hot list instead of all of it).  The
    milder ratios are recorded without a floor -- at 1:10 nearly every
    block is probed and the two layouts converge by design.
    """
    legacy = _build(0)
    blocked = _build(None)
    assert legacy.block_size == 0 and blocked.block_size > 0

    sweep = {}
    for ratio in RATIOS:
        expected = [entry for entry in
                    legacy.intersect_atoms([HOT, f"r{ratio}"]).entries]
        got = [entry for entry in
               blocked.intersect_atoms([HOT, f"r{ratio}"]).entries]
        assert got == expected, f"result mismatch at 1:{ratio}"

        legacy_timing = measure(_make_runner(legacy, ratio), repeats=9)
        blocked_timing = measure(_make_runner(blocked, ratio), repeats=9)
        blocked.stats.reset()
        _make_runner(blocked, ratio)()
        sweep[ratio] = {
            "rare_list_length": SIZE // ratio + (1 if SIZE % ratio else 0),
            "hot_list_length": SIZE,
            "legacy_mean_ms": round(legacy_timing.millis, 4),
            "blocked_mean_ms": round(blocked_timing.millis, 4),
            "speedup": round(legacy_timing.millis
                             / blocked_timing.millis, 3),
            "blocks_read": blocked.stats.blocks_read,
            "blocks_skipped": blocked.stats.blocks_skipped,
            "bytes_decoded": blocked.stats.bytes_decoded,
        }

    payload = {
        "experiment": "BENCH_intersect",
        "workload": {
            "records": SIZE,
            "shape": "flat sets; one hot atom in every record, one rare "
                     "marker per ratio",
            "block_size": blocked.block_size,
            "measurement": "intersect_atoms([hot, rare]), caches cleared "
                           "before every run",
        },
        "ratios": {f"1:{ratio}": stats for ratio, stats in sweep.items()},
        "headline_speedup_1_1000": sweep[1000]["speedup"],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_intersect.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert sweep[1000]["speedup"] >= 2.0, \
        f"blocked intersection below the 2x bar: {payload}"
