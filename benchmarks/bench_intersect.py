"""Experiment IX1: skewed intersection, blocked vs. legacy postings.

Candidate generation intersects the rarest atom's list with much longer
ones; the list-length *ratio* is what the block-compressed format
exploits.  The workload indexes flat records that all contain one hot
atom (list length = collection size) plus a rare marker atom present in
every ``ratio``-th record, and times
``InvertedFile.intersect_atoms([hot, rare])`` at ratios 1:10, 1:100 and
1:1000 on two physical layouts of the *same* collection:

* ``legacy``  -- plain single-value lists (``block_size=0``): the hot
  list is fully decoded and its heads materialized per query;
* ``blocked`` -- the packed block-compressed format at block sizes 64,
  128 (the default) and 256: the rare list's probes move through the hot
  list's skip directory and only the touched blocks decode, straight to
  numpy arrays when numpy is importable.

Caches are cleared before every run, so the comparison is cold-decode
against cold-decode.  Each measured cell also records which
``decode_path`` (vectorized or scalar) served it.  The sweep is written
to ``bench_results/BENCH_intersect.json``; the perf guard at the bottom
fails the run if the default layout ever loses to legacy at any ratio,
or if the headline 1:1000 speedup drops below 5x.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.protocol import measure
from repro.bench.reporting import RESULTS_DIR
from repro.core.invfile import InvertedFile

SIZE = 20_000
RATIOS = (10, 100, 1000)
HOT = "hot"
BLOCK_SIZES = (64, 128, 256)
DEFAULT_SWEEP_BLOCK = 128

#: pytest-benchmark layouts: legacy plain values vs. each swept block size.
LAYOUTS = {"legacy": 0, "blocked64": 64, "blocked128": 128,
           "blocked256": 256}


def _records():
    for i in range(SIZE):
        atoms = {HOT, f"u{i % 50}"}
        for ratio in RATIOS:
            if i % ratio == 0:
                atoms.add(f"r{ratio}")
        yield f"k{i}", atoms


def _build(block_size: int) -> InvertedFile:
    from repro.core.model import NestedSet
    prepared = ((key, NestedSet.from_obj(atoms))
                for key, atoms in _records())
    return InvertedFile.build(prepared, block_size=block_size)


def _make_runner(ifile: InvertedFile, ratio: int):
    atoms = [HOT, f"r{ratio}"]

    def run() -> int:
        # Cold decode every round: the point under test is codec work,
        # not cache residency.
        ifile.cache.clear()
        ifile.block_cache.clear()
        return len(ifile.intersect_atoms(atoms))

    return run


@pytest.mark.benchmark(group="intersect-skew")
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("layout", list(LAYOUTS))
def test_skew_sweep(benchmark, figure, layout, ratio):
    ifile = _build(LAYOUTS[layout])
    runner = _make_runner(ifile, ratio)
    figure.record(benchmark, layout, ratio, runner,
                  queries=1, dataset=f"flat-skew@{SIZE}",
                  layout=layout)


def test_headline_speedup():
    """Record BENCH_intersect.json across the skew and block-size sweep.

    Two perf floors gate the run.  The vectorized blocked path must
    never lose to the legacy full-decode -- speedup >= 1.0 at *every*
    ratio and block size -- and the headline 1:1000 point (default block
    size) must clear 5x: the rare probes decode ~20 blocks of the hot
    list instead of all of it, and each block decodes in a handful of
    numpy ops instead of a per-varint loop.
    """
    legacy = _build(0)
    assert legacy.block_size == 0
    legacy_timing = {}
    expected = {}
    for ratio in RATIOS:
        expected[ratio] = legacy.intersect_atoms([HOT, f"r{ratio}"]).entries
        legacy_timing[ratio] = measure(_make_runner(legacy, ratio),
                                       repeats=9)

    sweep: dict[int, dict[int, dict]] = {}
    for block_size in BLOCK_SIZES:
        blocked = _build(block_size)
        assert blocked.block_size == block_size
        per_ratio: dict[int, dict] = {}
        for ratio in RATIOS:
            got = blocked.intersect_atoms([HOT, f"r{ratio}"]).entries
            assert got == expected[ratio], \
                f"result mismatch at 1:{ratio} (block {block_size})"

            blocked_timing = measure(_make_runner(blocked, ratio),
                                     repeats=9)
            blocked.stats.reset()
            _make_runner(blocked, ratio)()
            per_ratio[ratio] = {
                "rare_list_length": SIZE // ratio
                + (1 if SIZE % ratio else 0),
                "hot_list_length": SIZE,
                "legacy_mean_ms": round(legacy_timing[ratio].millis, 4),
                "blocked_mean_ms": round(blocked_timing.millis, 4),
                "speedup": round(legacy_timing[ratio].millis
                                 / blocked_timing.millis, 3),
                "decode_path": blocked.stats.decode_path,
                "blocks_read": blocked.stats.blocks_read,
                "blocks_skipped": blocked.stats.blocks_skipped,
                "bytes_decoded": blocked.stats.bytes_decoded,
            }
        sweep[block_size] = per_ratio

    default = sweep[DEFAULT_SWEEP_BLOCK]
    payload = {
        "experiment": "BENCH_intersect",
        "workload": {
            "records": SIZE,
            "shape": "flat sets; one hot atom in every record, one rare "
                     "marker per ratio",
            "block_size": DEFAULT_SWEEP_BLOCK,
            "measurement": "intersect_atoms([hot, rare]), caches cleared "
                           "before every run",
        },
        "ratios": {f"1:{ratio}": stats for ratio, stats in default.items()},
        "block_size_sweep": {
            str(block_size): {f"1:{ratio}": stats
                              for ratio, stats in per_ratio.items()}
            for block_size, per_ratio in sweep.items()},
        "headline_speedup_1_1000": default[1000]["speedup"],
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_intersect.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    # Perf guard: blocked must never lose to legacy, at any swept point.
    for block_size, per_ratio in sweep.items():
        for ratio, cell in per_ratio.items():
            assert cell["speedup"] >= 1.0, \
                (f"blocked slower than legacy at 1:{ratio} "
                 f"(block {block_size}): {cell}")
    assert default[1000]["speedup"] >= 5.0, \
        f"headline 1:1000 speedup below the 5x bar: {payload}"
