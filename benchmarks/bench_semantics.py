"""Experiment X2: alternate embedding semantics (Section 4.2).

The same workload evaluated under homomorphic, isomorphic, and
homeomorphic containment.  Expected shape: hom is the baseline; iso pays
for per-node injective matching; homeo pays for interval-based descendant
joins (the paper argues the homeo adaptation "does not introduce any
additional complexity" -- constant-factor overhead only).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner

DATASET = "zipf-wide"
SIZE = 2000
N_QUERIES = 30


@pytest.mark.benchmark(group="semantics")
@pytest.mark.parametrize("semantics", ["hom", "iso", "homeo"])
@pytest.mark.parametrize("algorithm", ["topdown", "bottomup"])
def test_semantics(benchmark, workloads, figure, semantics, algorithm):
    workload = workloads.get(DATASET, SIZE, n_queries=N_QUERIES)
    workload.index.set_cache("frequency")
    runner = make_query_runner(workload.index, workload.queries, algorithm,
                               semantics=semantics)
    figure.record(benchmark, algorithm, semantics, runner,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
