"""Experiment SI1: top-k similarity search (future work 4).

Compares the inverted-file-driven candidate generation against brute-force
scoring of every record, across candidate limits.  Expected shape: the
index route scales with the number of overlapping records, not the
collection size; tighter candidate limits trade a little recall for
speed.
"""

from __future__ import annotations

import pytest

from repro.core.similarity import SimilaritySearch, nested_jaccard

SIZE = 2000
DATASET = "dblp"
K = 10


@pytest.mark.benchmark(group="similarity")
@pytest.mark.parametrize("mode", ["bruteforce", "index-500", "index-100"])
def test_similarity(benchmark, workloads, figure, mode):
    workload = workloads.get(DATASET, SIZE, n_queries=10)
    workload.index.set_cache("frequency")
    ifile = workload.index.inverted_file
    queries = [bench.query for bench in workload.queries[:8]]

    if mode == "bruteforce":
        def run() -> int:
            hits = 0
            for query in queries:
                scored = sorted(
                    (nested_jaccard(query, tree) for _key, tree
                     in workload.records), reverse=True)[:K]
                hits += len(scored)
            return hits

        rounds = 3
    else:
        limit = int(mode.split("-")[1])
        search = SimilaritySearch(ifile, candidate_limit=limit)

        def run() -> int:
            return sum(len(search.top_k(query, K)) for query in queries)

        rounds = 5
    figure.record(benchmark, "top-k", mode, run, rounds=rounds,
                  queries=len(queries), dataset=f"{DATASET}@{SIZE}")
