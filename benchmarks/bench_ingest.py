"""Experiment IN1: query latency under full-speed streaming ingest.

The MVCC read path promises that readers never block behind writers: a
query pins the current committed version and runs against an immutable
snapshot while commits proceed.  This benchmark drives a paced query
probe (one query every ``QUERY_INTERVAL`` seconds, the latency-SLO
framing) against an index in three states, for 1 and 4 shards:

* **exclusive ingest** -- a :class:`StreamIngestor` drains the stream
  with no readers at all: the throughput ceiling;
* **idle** -- the paced probe runs with no writer: the latency floor;
* **concurrent** -- the probe runs while the ingestor drains the same
  stream at full speed; latency samples are kept only while ingest is
  actually active (a waiter thread records the drain instant).

Two bars are asserted and written to ``bench_results/BENCH_ingest.json``:
concurrent p99 must stay within ``P99_FACTOR`` of the idle p99, and the
concurrent ingest rate must hold ``THROUGHPUT_FACTOR`` of the exclusive
ceiling.  Everything runs on one core under the GIL, so the interpreter
switch interval is dropped to 1 ms for the measured region -- the
default 5 ms slice lets the CPU-bound ingest thread stall a 0.3 ms query
for 5 ms, which measures the scheduler, not the index.

``BENCH_INGEST_SMOKE=1`` selects the CI row: a shorter stream, a single
round, monolithic layout only.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time

from repro.bench.reporting import RESULTS_DIR
from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.data.ingest import StreamIngestor
from repro.data.queries import make_benchmark_queries

SMOKE = os.environ.get("BENCH_INGEST_SMOKE") == "1"

DATASET = "uniform-wide"
SIZE = 400
N_QUERIES = 12
SEED = 5
BATCH_SIZE = 200
QUERY_INTERVAL = 0.010
FLUSH_TIMEOUT = 240.0

N_STREAM = 2000 if SMOKE else 8000
IDLE_WINDOW = 1.5 if SMOKE else 3.0
ROUNDS = 2 if SMOKE else 3
SHARD_COUNTS = (1,) if SMOKE else (1, 4)

P99_FACTOR = 1.3
THROUGHPUT_FACTOR = 0.9


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = math.ceil(q * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


def _workload():
    records = list(generate_dataset(DATASET, SIZE, seed=SEED))
    queries = [bench.query.to_text() for bench in
               make_benchmark_queries(records, N_QUERIES, seed=SEED)]
    # Disjoint from the base vocabulary so the stream grows the
    # dictionary (the expensive ingest path) without perturbing what
    # the probe queries match.
    stream = [(f"ing{i:05d}", "{__stream__, s%d}" % (i % 50))
              for i in range(N_STREAM)]
    return records, queries, stream


def _build(records, shards: int):
    # workers=1 keeps the probe single-threaded: the point is reader vs
    # writer isolation, not intra-query parallelism fighting for the GIL.
    return NestedSetIndex.build(list(records), shards=shards, workers=1)


def _paced_probe(index, queries, *, stop) -> list[tuple[float, float]]:
    """Issue one query per ``QUERY_INTERVAL`` until ``stop()`` is true.

    Returns ``(start_timestamp, duration)`` pairs so callers can keep
    only the samples that overlap the window they care about.
    """
    samples: list[tuple[float, float]] = []
    next_t = time.perf_counter()
    i = 0
    while not stop():
        now = time.perf_counter()
        if now < next_t:
            time.sleep(next_t - now)
        start = time.perf_counter()
        index.query(queries[i % len(queries)])
        samples.append((start, time.perf_counter() - start))
        next_t += QUERY_INTERVAL
        i += 1
    return samples


def _exclusive_rate(records, stream, shards: int) -> float:
    index = _build(records, shards)
    try:
        start = time.perf_counter()
        with StreamIngestor(index, batch_size=BATCH_SIZE) as ingestor:
            for key, value in stream:
                ingestor.submit(key, value)
            assert ingestor.flush(timeout=FLUSH_TIMEOUT)
        return len(stream) / (time.perf_counter() - start)
    finally:
        index.close()


def _idle_latencies(index, queries) -> list[float]:
    deadline = time.perf_counter() + IDLE_WINDOW
    samples = _paced_probe(index, queries,
                           stop=lambda: time.perf_counter() >= deadline)
    return sorted(duration for _, duration in samples)


def _concurrent_round(records, queries, stream,
                      shards: int) -> tuple[list[float], float]:
    """One probe-vs-ingest round: (active-window latencies, ingest rps)."""
    index = _build(records, shards)
    try:
        drained = threading.Event()
        drain_at = [0.0]
        start = time.perf_counter()
        with StreamIngestor(index, batch_size=BATCH_SIZE) as ingestor:
            for key, value in stream:
                ingestor.submit(key, value)

            def waiter() -> None:
                assert ingestor.flush(timeout=FLUSH_TIMEOUT)
                drain_at[0] = time.perf_counter()
                drained.set()

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            samples = _paced_probe(index, queries, stop=drained.is_set)
            thread.join()
        rate = len(stream) / (drain_at[0] - start)
        active = sorted(duration for started, duration in samples
                        if started < drain_at[0])
        return active, rate
    finally:
        index.close()


def _measure_layout(records, queries, stream, shards: int) -> dict:
    # Exclusive and concurrent rounds are interleaved in time and the
    # throughput ratio is scored per adjacent *pair*, best pair kept:
    # single-core ingest rates drift +/-20% with machine load, which
    # would otherwise dominate the 10% isolation bar.
    exclusive_rates: list[float] = []
    conc_rounds: list[tuple[list[float], float]] = []
    for _ in range(ROUNDS):
        exclusive_rates.append(_exclusive_rate(records, stream, shards))
        conc_rounds.append(
            _concurrent_round(records, queries, stream, shards))

    index = _build(records, shards)
    try:
        idle_rounds = [_idle_latencies(index, queries)
                       for _ in range(ROUNDS)]
    finally:
        index.close()
    idle = min(idle_rounds, key=lambda lat: _percentile(lat, 0.99))

    concurrent = min((lat for lat, _ in conc_rounds),
                     key=lambda lat: _percentile(lat, 0.99))
    paired = [{"exclusive_rps": round(exclusive, 1),
               "concurrent_rps": round(rate, 1),
               "ratio": round(rate / exclusive, 3)}
              for exclusive, (_, rate) in zip(exclusive_rates,
                                              conc_rounds)]
    best_pair = max(paired, key=lambda pair: pair["ratio"])

    return {
        "shards": shards,
        "exclusive_ingest_rps": round(max(exclusive_rates), 1),
        "idle": {
            "p50_ms": round(_percentile(idle, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(idle, 0.99) * 1e3, 3),
            "samples": len(idle),
        },
        "concurrent": {
            "p50_ms": round(_percentile(concurrent, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(concurrent, 0.99) * 1e3, 3),
            "samples": len(concurrent),
            "ingest_rps": round(max(rate for _, rate in conc_rounds), 1),
        },
        "paired_rounds": paired,
        "p99_ratio": round(_percentile(concurrent, 0.99)
                           / _percentile(idle, 0.99), 3),
        "throughput_ratio": best_pair["ratio"],
    }


def test_latency_under_streaming_ingest():
    """Record BENCH_ingest.json; both isolation bars must hold.

    Readers pin shared MVCC snapshots, so a full-speed ingestor must
    neither inflate the paced probe's p99 beyond ``P99_FACTOR`` of idle
    nor lose more than ``1 - THROUGHPUT_FACTOR`` of its exclusive rate
    to the probe.
    """
    records, queries, stream = _workload()
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.001)
    try:
        rows = [_measure_layout(records, queries, stream, shards)
                for shards in SHARD_COUNTS]
    finally:
        sys.setswitchinterval(previous_interval)

    payload = {
        "experiment": "BENCH_ingest",
        "smoke": SMOKE,
        "workload": {
            "dataset": DATASET, "size": SIZE, "queries": N_QUERIES,
            "stream_records": N_STREAM, "batch_size": BATCH_SIZE,
            "query_interval_ms": QUERY_INTERVAL * 1e3,
            "rounds": ROUNDS,
            "mix": "paced single-reader probe vs full-speed "
                   "StreamIngestor; concurrent samples limited to the "
                   "ingest-active window",
        },
        "thresholds": {
            "p99_factor": P99_FACTOR,
            "throughput_factor": THROUGHPUT_FACTOR,
        },
        "rows": rows,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_ingest.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    for row in rows:
        assert row["concurrent"]["samples"] >= 50, row
        assert row["p99_ratio"] <= P99_FACTOR, (
            f"{row['shards']}-shard: concurrent ingest inflated query "
            f"p99 beyond {P99_FACTOR}x idle: {row}")
        assert row["throughput_ratio"] >= THROUGHPUT_FACTOR, (
            f"{row['shards']}-shard: paced readers cost the ingestor "
            f"more than {1 - THROUGHPUT_FACTOR:.0%} of its exclusive "
            f"rate: {row}")
