"""Experiment J1: the prefix-tree join operator vs the per-query loop.

The headline collection×collection workload (Equation 1) at
10k×100k scale: Q joined against an indexed S, once as the paper's
per-query loop (each query compiled and evaluated independently) and
once through ``strategy="prefix"`` (one trie over Q's atom sets, each
distinct prefix's posting-list intersection streamed once).

Two workloads probe the two ends of the operator's envelope:

* **shared-structure** -- queries generated from a small pool of
  templates (the regime the prefix tree is built for: most of Q's
  posting volume sits on shared trie prefixes);
* **no-sharing** -- every query a distinct random atom set over a wide
  alphabet (worst case: the trie degenerates to one path per query and
  can only win by skipping per-query plan compilation).

Both run monolithic and 4-shard sharded.  The results land in
``bench_results/BENCH_join.json``; the in-test perf guard asserts the
prefix join never loses to the loop on the shared-structure workload
(>= 1.0x at every layout), which must hold at any scale -- the
headline >= 3x factor is carried by the recorded full-scale JSON.

``BENCH_JOIN_SMOKE=1`` shrinks the collections for CI.
"""

from __future__ import annotations

import json
import os
import random

from repro.bench.protocol import measure
from repro.bench.reporting import RESULTS_DIR
from repro.core.engine import NestedSetIndex
from repro.core.join import containment_join
from repro.core.model import NestedSet
from repro.core.prefixjoin import choose_strategy
from repro.core.shard import ShardedIndex

SMOKE = bool(os.environ.get("BENCH_JOIN_SMOKE"))

N_RECORDS = 3_000 if SMOKE else 100_000
N_QUERIES = 300 if SMOKE else 10_000
REPEATS = 3

#: Alphabets: templates draw from T_ATOMS, fillers from C_ATOMS, the
#: no-sharing workload from the wide W_ATOMS.
T_ATOMS = [f"t{i}" for i in range(100)]
C_ATOMS = [f"c{i}" for i in range(50)]
W_ATOMS = [f"w{i}" for i in range(60 if SMOKE else 5_000)]
N_TEMPLATES = 30 if SMOKE else 150

LAYOUTS = [("1-shard", 1, 1), ("4-shard", 4, 4)]


def _corpus() -> list[tuple[str, NestedSet]]:
    rng = random.Random(20130322)
    return [(f"r{i:06d}",
             NestedSet(rng.sample(T_ATOMS, 3) + rng.sample(C_ATOMS, 2)
                       + rng.sample(W_ATOMS, 2)))
            for i in range(N_RECORDS)]


def _shared_workload(corpus) -> list[tuple[str, NestedSet]]:
    """Template queries sampled from real records (Q drawn from S).

    Each template is one record's 3 template atoms; half the queries
    add one of that record's filler atoms.  Every query matches its
    source record at least, so the join emits real pairs.
    """
    rng = random.Random(7)
    templates = []
    for _ in range(N_TEMPLATES):
        _key, tree = corpus[rng.randrange(len(corpus))]
        t_atoms = sorted(a for a in tree.atoms if a.startswith("t"))
        c_atoms = sorted(a for a in tree.atoms if a.startswith("c"))
        templates.append((t_atoms, c_atoms))
    queries = []
    for i in range(N_QUERIES):
        t_atoms, c_atoms = rng.choice(templates)
        extra = [rng.choice(c_atoms)] if i % 2 else []
        queries.append((f"q{i:05d}", NestedSet(t_atoms + extra)))
    return queries


def _nosharing_workload() -> list[tuple[str, NestedSet]]:
    """Distinct random sets over the wide alphabet: no designed sharing."""
    rng = random.Random(11)
    return [(f"q{i:05d}", NestedSet(rng.sample(W_ATOMS, 3)))
            for i in range(N_QUERIES)]


def _build(records, shards: int, workers: int):
    if shards == 1:
        return NestedSetIndex.build(records)
    return ShardedIndex.build(records, shards=shards, workers=workers)


def _time_strategy(index, queries, strategy: str):
    result = containment_join(index, queries, strategy=strategy)
    timing = measure(
        lambda: containment_join(index, queries, strategy=strategy),
        repeats=REPEATS)
    return result, timing


def test_join_operator_speedup():
    corpus = _corpus()
    workloads = [("shared-structure", _shared_workload(corpus)),
                 ("no-sharing", _nosharing_workload())]
    results: dict[str, dict[str, dict]] = {}
    dispatch: dict[str, dict] = {}
    guard_failures = []

    for label, shards, workers in LAYOUTS:
        index = _build(corpus, shards, workers)
        stats = index.collection_stats()
        for workload_name, queries in workloads:
            if workload_name not in dispatch:
                _chosen, info = choose_strategy(
                    [tree for _qkey, tree in queries], stats)
                dispatch[workload_name] = info
            loop_result, loop_timing = _time_strategy(index, queries,
                                                      "per-query")
            tree_result, tree_timing = _time_strategy(index, queries,
                                                      "prefix")
            assert tree_result.pairs == loop_result.pairs, \
                f"result mismatch: {workload_name} @ {label}"
            speedup = loop_timing.millis / tree_timing.millis
            results.setdefault(workload_name, {})[label] = {
                "per_query_mean_ms": round(loop_timing.millis, 3),
                "prefix_mean_ms": round(tree_timing.millis, 3),
                "speedup": round(speedup, 3),
                "n_pairs": tree_result.n_pairs,
                "prefix_nodes": tree_result.extra["prefix_nodes"],
                "prefix_streams": tree_result.extra["prefix_streams"],
                "prefix_reused": tree_result.extra["prefix_reused"],
            }
            if workload_name == "shared-structure" and speedup < 1.0:
                guard_failures.append(
                    f"{workload_name} @ {label}: {speedup:.3f}x")
        if hasattr(index, "close"):
            index.close()

    payload = {
        "experiment": "BENCH_join",
        "workload": {
            "n_records": N_RECORDS,
            "n_queries": N_QUERIES,
            "repeats": REPEATS,
            "smoke": SMOKE,
            "templates": N_TEMPLATES,
            "shape": "flat sets: 3 template + 2 filler + 2 wide atoms "
                     "per record",
        },
        "dispatch": dispatch,
        "results": results,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_join.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)

    # Perf guard: on the shared-structure workload the prefix join must
    # never lose to the per-query loop, at either layout and any scale.
    assert not guard_failures, \
        f"prefix join lost to the per-query loop: {guard_failures}"
    # The dispatcher must route each workload to the right side.
    assert dispatch["shared-structure"]["chosen"] == "prefix"
    if not SMOKE:
        assert dispatch["no-sharing"]["chosen"] == "per-query"
