"""Experiment 3 (Fig 6e): Twitter collection, increasing DB size.

Paper shape: see DESIGN.md experiment F6e and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "twitter"
SIZES = [500,1000,2000,4000]
N_QUERIES = 30


@pytest.mark.benchmark(group="fig6e-twitter")
@figure_params(SIZES)
def test_fig6e(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
