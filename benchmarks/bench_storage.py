"""Experiment ST1: storage-engine ablation (Section 5.1).

The paper ran on Tokyo Cabinet's external hash table with caching
disabled.  This benchmark compares our three engines -- in-memory dict,
disk hash table, disk B+tree -- on index construction and on the query
workload (uncached and cached).  Expected shape: disk engines cost more
per uncached lookup (page traffic); the inverted-list cache flattens the
difference because hot lists stop touching the store at all.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    generate_dataset,
    make_query_runner,
)
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries

DATASET = "zipf-wide"
SIZE = 1000
N_QUERIES = 20

_RECORDS = None


def _records():
    global _RECORDS
    if _RECORDS is None:
        _RECORDS = list(generate_dataset(DATASET, SIZE, seed=0))
    return _RECORDS


@pytest.mark.benchmark(group="storage-build")
@pytest.mark.parametrize("engine", ["memory", "diskhash", "btree"])
def test_index_build(benchmark, figure, engine, tmp_path):
    records = _records()
    counter = [0]

    def build() -> None:
        counter[0] += 1
        path = None if engine == "memory" else \
            str(tmp_path / f"b{counter[0]}.{engine}")
        NestedSetIndex.build(records, storage=engine, path=path).close()

    figure.record(benchmark, "build", engine, build, rounds=3,
                  dataset=f"{DATASET}@{SIZE}")


@pytest.mark.benchmark(group="storage-query")
@pytest.mark.parametrize("engine", ["memory", "diskhash", "btree"])
@pytest.mark.parametrize("policy", [None, "frequency"],
                         ids=["nocache", "cache"])
def test_query_per_engine(benchmark, figure, engine, policy, tmp_path):
    records = _records()
    path = None if engine == "memory" else str(tmp_path / f"q.{engine}")
    index = NestedSetIndex.build(records, storage=engine, path=path,
                                 cache=policy)
    queries = make_benchmark_queries(records, N_QUERIES, seed=0)
    runner = make_query_runner(index, queries, "topdown")
    label = "query" + ("+cache" if policy else "")
    figure.record(benchmark, label, engine, runner, rounds=3,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
    index.close()
