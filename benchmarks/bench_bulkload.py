"""Experiment BL1: external-memory build vs in-memory build.

The run-merge builder (repro.core.bulkload) bounds the resident posting
buffer.  Expected shape: tight budgets cost extra store traffic (run
write + read-back per flushed posting) but stay within a small factor of
the unbounded in-memory build, while the peak Python heap drops toward
the configured buffer size.  Builds target the disk-hash engine so the
store itself lives off-heap; the produced indexes are identical
(asserted in tests, not here).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.bulkload import build_external
from repro.core.invfile import InvertedFile

SIZE = 2000
DATASET = "zipf-wide"

_RECORDS = None


def _records():
    global _RECORDS
    if _RECORDS is None:
        _RECORDS = list(generate_dataset(DATASET, SIZE, seed=0))
    return _RECORDS


@pytest.mark.benchmark(group="bulkload")
@pytest.mark.parametrize("mode", ["in-memory", "external-10k",
                                  "external-1k"])
def test_build_modes(benchmark, figure, mode, tmp_path):
    import itertools
    import tracemalloc

    records = _records()
    counter = itertools.count()

    def next_path() -> str:
        return str(tmp_path / f"b{next(counter)}.idx")

    if mode == "in-memory":
        def build() -> None:
            InvertedFile.build(records, storage="diskhash",
                               path=next_path()).close()
    else:
        budget = 10_000 if mode.endswith("10k") else 1_000

        def build() -> None:
            build_external(records, storage="diskhash", path=next_path(),
                           memory_budget=budget).close()

    # One instrumented run to capture the peak Python heap during the
    # build -- the quantity the bounded buffer is supposed to bound.
    tracemalloc.start()
    build()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    figure.record(benchmark, "build", mode, build, rounds=3,
                  peak_heap_mb=round(peak / 1e6, 2),
                  dataset=f"{DATASET}@{SIZE}")
