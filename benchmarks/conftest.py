"""Shared infrastructure for the figure/experiment benchmarks.

Every benchmark module reproduces one paper artifact (see the experiment
index in DESIGN.md).  The ``workloads`` fixture shares built indexes
across parameter cases; the ``figure`` fixture collects one
:class:`SeriesPoint` per benchmark case and, at module teardown, prints
the paper-style series table and saves the raw rows under
``bench_results/``.
"""

from __future__ import annotations

import pytest

from repro.bench.protocol import SeriesPoint, Timing
from repro.bench.reporting import format_figure, save_points
from repro.bench.workloads import WorkloadCache

#: Rounds per measurement.  The paper uses 10 with min/max trimmed; 5 keeps
#: the full suite inside a laptop-scale time budget while still trimming.
ROUNDS = 5


@pytest.fixture(scope="session")
def workloads() -> WorkloadCache:
    cache = WorkloadCache()
    yield cache
    cache.clear()


class FigureCollector:
    """Accumulates series points for one figure and reports at teardown."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.title = title
        self.points: list[SeriesPoint] = []

    def record(self, benchmark, series: str, x: float,
               runner, *, rounds: int = ROUNDS, **extra: object) -> None:
        """Run ``runner`` under pytest-benchmark and collect the timings."""
        benchmark.pedantic(runner, rounds=rounds, warmup_rounds=1)
        times = tuple(benchmark.stats.stats.data)
        self.points.append(SeriesPoint(series, x, Timing(times),
                                       extra=dict(extra)))


@pytest.fixture(scope="module")
def figure(request) -> FigureCollector:
    module = request.module
    name = module.__name__.replace("bench_", "")
    title = (module.__doc__ or name).strip().splitlines()[0]
    collector = FigureCollector(name, title)
    yield collector
    if collector.points:
        rendered = format_figure(collector.title, collector.points)
        path = save_points(collector.name, collector.points)
        # Persist the rendered series table next to the raw rows (the
        # terminal write below is swallowed when pytest output is piped).
        with open(path[:-5] + ".txt", "w") as handle:
            handle.write(rendered + "\n")
        reporter = request.config.pluginmanager.get_plugin(
            "terminalreporter")
        if reporter is not None:  # bypass output capture
            reporter.write_line(f"\n{rendered}")
            reporter.write_line(f"[raw rows saved to {path}]")
