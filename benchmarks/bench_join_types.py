"""Experiment X1: the set-based join extensions (Section 4.1).

Runs the same sampled workload under the subset (Equation 2), equality,
superset, and epsilon-overlap joins on both algorithms.  Expected shape:
equality is cheapest (leaf-count filtering shrinks candidates), subset
close to it, superset and overlap cost more (multiset-union candidate
generation touches every atom's list).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner

DATASET = "zipf-wide"
SIZE = 2000
N_QUERIES = 30

JOINS = [("subset", 1), ("equality", 1), ("superset", 1),
         ("overlap", 1), ("overlap", 2)]
JOIN_IDS = ["subset", "equality", "superset", "overlap-e1", "overlap-e2"]


@pytest.mark.benchmark(group="join-types")
@pytest.mark.parametrize("join,epsilon", JOINS, ids=JOIN_IDS)
@pytest.mark.parametrize("algorithm", ["topdown", "bottomup"])
def test_join_types(benchmark, workloads, figure, join, epsilon, algorithm):
    workload = workloads.get(DATASET, SIZE, n_queries=N_QUERIES)
    workload.index.set_cache("frequency")
    runner = make_query_runner(workload.index, workload.queries, algorithm,
                               join=join, epsilon=epsilon)
    join_id = join if join != "overlap" else f"overlap-e{epsilon}"
    figure.record(benchmark, algorithm, join_id, runner,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
