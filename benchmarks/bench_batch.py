"""Experiment BA1: batch evaluation with subquery memoization (future work 6).

Workloads whose queries share subtrees (here: template queries derived
from sampled records, plus the verbatim workload which repeats whole
records) are evaluated individually vs through the
:class:`~repro.core.batch.BatchEvaluator`.  Expected shape: batching wins
roughly in proportion to the share of repeated subtrees and never loses
more than the memo bookkeeping overhead.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BatchEvaluator
from repro.core.bottomup import bottomup_match_nodes

SIZE = 2000
DATASET = "zipf-wide"


def _workload_with_sharing(records, repeat: int) -> list:
    """Each sampled record query appears ``repeat`` times (templates)."""
    base = [tree for _key, tree in records[:30]]
    return base * repeat


@pytest.mark.benchmark(group="batch-eval")
@pytest.mark.parametrize("repeat", [1, 3], ids=["unique", "3x-shared"])
@pytest.mark.parametrize("mode", ["individual", "batched"])
def test_batch(benchmark, workloads, figure, repeat, mode):
    workload = workloads.get(DATASET, SIZE, n_queries=10)
    workload.index.set_cache("frequency")
    ifile = workload.index.inverted_file
    queries = _workload_with_sharing(workload.records, repeat)

    if mode == "individual":
        def run() -> int:
            return sum(len(bottomup_match_nodes(query, ifile))
                       for query in queries)
    else:
        def run() -> int:
            evaluator = BatchEvaluator(ifile)
            return sum(len(evaluator.match_nodes(query))
                       for query in queries)

    label = f"{mode}"
    figure.record(benchmark, label, f"{repeat}x", run,
                  queries=len(queries), dataset=f"{DATASET}@{SIZE}")
