"""Experiment B1: Bloom-filter pruning for the naive scan (Section 3.3).

The hierarchical Bloom filters let the naive checker skip records whose
filter comparison already refutes containment.  Expected shape: every
filter beats the unfiltered scan on this half-negative workload; the
depth (pair) filter prunes at least as well as the flat one.
"""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomIndex
from repro.core.naive import NaiveScanner

DATASET = "zipf-wide"
SIZE = 1000
N_QUERIES = 10

_BLOOMS: dict[str, BloomIndex | None] = {}


def _bloom_for(kind: str | None, records) -> BloomIndex | None:
    if kind is None:
        return None
    if kind not in _BLOOMS:
        _BLOOMS[kind] = BloomIndex.build(records, kind=kind)
    return _BLOOMS[kind]


@pytest.mark.benchmark(group="bloom-prefilter")
@pytest.mark.parametrize("kind", [None, "flat", "breadth", "depth"],
                         ids=["no-filter", "flat", "breadth", "depth"])
def test_bloom_prefilter(benchmark, workloads, figure, kind):
    workload = workloads.get(DATASET, SIZE, n_queries=N_QUERIES)
    bloom = _bloom_for(kind, workload.records)
    scanner = NaiveScanner(workload.records, bloom_index=bloom)

    def run() -> int:
        total = 0
        for bench in workload.queries:
            total += len(scanner.query(bench.query))
        return total

    label = kind if kind else "no-filter"
    figure.record(benchmark, "naive-scan", label, run, rounds=3,
                  queries=N_QUERIES, dataset=f"{DATASET}@{SIZE}")
