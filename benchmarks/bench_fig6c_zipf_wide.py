"""Experiment 2 (Fig 6c): skewed (theta=0.7) wide synthetic, increasing DB size.

Paper shape: see DESIGN.md experiment F6c and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from figure_common import figure_params, run_figure_case

DATASET = "zipf-wide"
SIZES = [1000,2000,4000,8000]
N_QUERIES = 50


@pytest.mark.benchmark(group="fig6c-zipf-wide")
@figure_params(SIZES)
def test_fig6c(benchmark, workloads, figure, size, algorithm, policy):
    run_figure_case(workloads, figure, benchmark, DATASET, size,
                    algorithm, policy, n_queries=N_QUERIES)
