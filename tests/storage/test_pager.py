"""Tests for the paged-file manager."""

from __future__ import annotations

import pytest

from repro.storage.errors import (
    CorruptionError,
    PageBoundsError,
    StorageError,
)
from repro.storage.pager import MAX_META, Pager


@pytest.fixture
def pager(tmp_path) -> Pager:
    p = Pager(str(tmp_path / "file.pg"), create=True)
    yield p
    p.close()


class TestLifecycle:
    def test_create_and_reopen(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=1024, create=True)
        page = pager.allocate()
        pager.write(page, b"hello")
        pager.close()
        reopened = Pager(path)
        assert reopened.page_size == 1024
        assert reopened.read(page).startswith(b"hello")
        reopened.close()

    def test_missing_file(self, tmp_path) -> None:
        with pytest.raises(StorageError):
            Pager(str(tmp_path / "nope.pg"))

    def test_bad_magic(self, tmp_path) -> None:
        path = tmp_path / "bad.pg"
        path.write_bytes(b"XXXX" + b"\x00" * 100)
        with pytest.raises(CorruptionError):
            Pager(str(path))

    def test_truncated_header(self, tmp_path) -> None:
        path = tmp_path / "tiny.pg"
        path.write_bytes(b"NC")
        with pytest.raises(CorruptionError):
            Pager(str(path))


class TestPages:
    def test_allocate_sequential(self, pager: Pager) -> None:
        first = pager.allocate()
        second = pager.allocate()
        assert second == first + 1

    def test_write_read_roundtrip(self, pager: Pager) -> None:
        page = pager.allocate()
        pager.write(page, b"abc")
        data = pager.read(page)
        assert len(data) == pager.page_size
        assert data.startswith(b"abc")
        assert data[3:] == b"\x00" * (pager.page_size - 3)

    def test_oversized_write_rejected(self, pager: Pager) -> None:
        page = pager.allocate()
        with pytest.raises(StorageError):
            pager.write(page, b"x" * (pager.page_size + 1))

    def test_bounds_checked(self, pager: Pager) -> None:
        with pytest.raises(PageBoundsError):
            pager.read(0)  # the header page is not client-readable
        with pytest.raises(PageBoundsError):
            pager.read(999)

    def test_free_list_recycles(self, pager: Pager) -> None:
        first = pager.allocate()
        pager.allocate()
        pager.free(first)
        assert pager.allocate() == first

    def test_freed_page_comes_back_zeroed(self, pager: Pager) -> None:
        page = pager.allocate()
        pager.write(page, b"junk")
        pager.free(page)
        recycled = pager.allocate()
        assert recycled == page
        assert pager.read(recycled) == b"\x00" * pager.page_size

    def test_free_list_survives_reopen(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, create=True)
        page = pager.allocate()
        pager.free(page)
        pager.close()
        reopened = Pager(path)
        assert reopened.allocate() == page
        reopened.close()


class TestMeta:
    def test_meta_roundtrip(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, create=True)
        pager.set_meta(b"client-config")
        pager.close()
        reopened = Pager(path)
        assert reopened.meta == b"client-config"
        reopened.close()

    def test_meta_size_limit(self, pager: Pager) -> None:
        with pytest.raises(StorageError):
            pager.set_meta(b"x" * (MAX_META + 1))


class TestOverflow:
    def test_small_payload(self, pager: Pager) -> None:
        head = pager.write_overflow(b"tiny")
        assert pager.read_overflow(head, 4) == b"tiny"

    def test_multi_page_payload(self, pager: Pager) -> None:
        payload = bytes(range(256)) * 64  # 16 KiB over 4 KiB pages
        head = pager.write_overflow(payload)
        assert pager.read_overflow(head, len(payload)) == payload

    def test_empty_payload(self, pager: Pager) -> None:
        head = pager.write_overflow(b"")
        assert pager.read_overflow(head, 0) == b""

    def test_free_overflow_recycles_every_page(self, pager: Pager) -> None:
        payload = b"z" * (pager.page_size * 3)
        before = pager.n_pages
        head = pager.write_overflow(payload)
        grown = pager.n_pages - before
        assert grown >= 3
        pager.free_overflow(head, len(payload))
        # Every freed page should be recycled before the file grows again.
        recycled = {pager.allocate() for _ in range(grown)}
        assert all(page < pager.n_pages for page in recycled)
        assert pager.n_pages == before + grown

    def test_chain_ends_early_is_corruption(self, pager: Pager) -> None:
        head = pager.write_overflow(b"abc")
        with pytest.raises(CorruptionError):
            pager.read_overflow(head, 10 ** 6)
