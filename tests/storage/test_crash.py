"""Crash-consistency sweep: every injected crash point recovers cleanly.

For each mutation (insert / delete / compact), each disk backend
(DiskHashTable / BPlusTree), and each layout (monolithic / 4-shard), the
harness:

1. builds a small index and snapshots its file bytes (PRE);
2. runs the mutation once cleanly under a *counting* fault plan to learn
   the total number of durability events N and snapshot the result
   (POST);
3. for each crash point ``n`` in 1..N, restores PRE, re-runs the
   mutation with an injected crash (torn fatal write) at event ``n``,
   reopens the index -- which runs WAL recovery -- and asserts the
   recovered file is byte-equivalent to PRE or POST and answers queries
   accordingly.

Insert and delete sweep every crash point; compact (hundreds of events,
all on the *fresh* store) strides through a bounded sample.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.shard import ShardedIndex
from repro.storage import CrashError, FaultPlan, inject
from repro.storage.faults import drop_store
from repro.storage.pager import wal_path

BACKENDS = ("diskhash", "btree")

RECORDS = [
    ("tim", "{USA, {UK, {cheese, {A, motorbike}}}}"),
    ("sue", "{USA, UK, {A, cheese}}"),
    ("ann", "{fr, {de, {A}}}"),
    ("bob", "{USA, {de, wine}}"),
    ("cat", "{UK, {wine, {B}}}"),
    ("dan", "{fr, cheese}"),
    ("eve", "{de, {USA, {B, motorbike}}}"),
    ("fox", "{wine, {cheese}}"),
]
QUERY = "{USA}"
NEW_KEY, NEW_VALUE = "gil", "{USA, {novel, {A}}}"
DEAD_KEY = "bob"


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _restore(path: str, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
    wal = wal_path(path)
    if os.path.exists(wal):
        os.remove(wal)


def _build(path: str, storage: str, shards: int) -> None:
    index = NestedSetIndex.build(
        list(RECORDS), storage=storage, path=path, shards=shards)
    index.close()


def _open(path: str, storage: str):
    return NestedSetIndex.open(storage, path)


def _store_of(index):
    if isinstance(index, ShardedIndex):
        return index.base_store
    return index.inverted_file.store


def _mutate(index, op: str) -> None:
    if op == "insert":
        index.insert(NEW_KEY, NEW_VALUE)
    elif op == "delete":
        assert index.delete(DEAD_KEY)
    else:
        raise AssertionError(op)


def _reference_answer(records) -> list[str]:
    """Ground-truth answer to ``QUERY`` from a memory-backed index."""
    index = NestedSetIndex.build(list(records))
    try:
        return index.query(QUERY)
    finally:
        index.close()


def _expected_results(op: str) -> tuple[list[str], list[str]]:
    """(pre-image, post-image) answers to ``QUERY``."""
    pre = _reference_answer(RECORDS)
    if op == "insert":
        post = _reference_answer(RECORDS + [(NEW_KEY, NEW_VALUE)])
    else:
        post = _reference_answer([(key, value) for key, value in RECORDS
                                  if key != DEAD_KEY])
    return pre, post


def _sweep_points(total: int, limit: int = 48) -> list[int]:
    if total <= limit:
        return list(range(1, total + 1))
    stride = (total + limit - 1) // limit
    points = list(range(1, total + 1, stride))
    if points[-1] != total:
        points.append(total)
    return points


def _count_events(path: str, storage: str, run) -> FaultPlan:
    """Run ``run(index)`` cleanly under a counting plan."""
    plan = FaultPlan()
    with inject(plan):
        index = _open(path, storage)
        plan.arm()
        run(index)
        plan.disarm()
        index.close()
    return plan


def _crash_at(path: str, storage: str, run, n: int) -> bool:
    """Re-run ``run`` with a crash at event ``n``; True if it fired."""
    plan = FaultPlan(crash_at=n, tear_bytes=3)
    with inject(plan):
        index = _open(path, storage)
        plan.arm()
        try:
            run(index)
            plan.disarm()
            index.close()
            return False
        except CrashError:
            plan.disarm()
            drop_store(_store_of(index))
            return True


@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("op", ["insert", "delete"])
def test_crash_sweep_mutations(tmp_path, storage, shards, op) -> None:
    path = str(tmp_path / "idx.db")
    _build(path, storage, shards)
    pre = _read(path)
    pre_answer, post_answer = _expected_results(op)

    plan = _count_events(path, storage, lambda index: _mutate(index, op))
    post = _read(path)
    total = plan.events
    assert total >= 3, "mutation produced suspiciously few events"
    assert post != pre

    for n in _sweep_points(total):
        _restore(path, pre)
        crashed = _crash_at(path, storage,
                            lambda index: _mutate(index, op), n)
        assert crashed, f"crash point {n} of {total} never fired"

        recovered = _open(path, storage)
        answer = recovered.query(QUERY)
        recovered.close()
        final = _read(path)
        assert final in (pre, post), \
            f"{storage}/{shards}-shard {op}: crash at event {n} left " \
            f"bytes equal to neither image"
        assert answer == (pre_answer if final == pre else post_answer), \
            f"{storage}/{shards}-shard {op}: wrong answer after crash " \
            f"at event {n}"


@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("shards", [1, 4])
def test_crash_sweep_compact(tmp_path, storage, shards) -> None:
    """Crashes during compact never touch the original index.

    Compaction rebuilds into a *fresh* store; the manifest (sharded) or
    the caller-side swap (monolithic) happens only after the rebuild, so
    the original file must stay byte-identical through every crash
    point.  When the fresh store did come up sharded, its manifest was
    the last write -- it must answer queries completely.
    """
    path = str(tmp_path / "idx.db")
    fresh_path = str(tmp_path / "fresh.db")
    _build(path, storage, shards)
    # Tombstone one record so compact has something to drop.
    index = _open(path, storage)
    assert index.delete(DEAD_KEY)
    index.close()
    pre = _read(path)
    pre_answer = _reference_answer([(key, value) for key, value in RECORDS
                                    if key != DEAD_KEY])

    def run_compact(index) -> None:
        index.compact(storage=storage, path=fresh_path)

    plan = _count_events(path, storage, run_compact)
    total = plan.events
    assert total > 0
    for stale in (fresh_path, wal_path(fresh_path)):
        if os.path.exists(stale):
            os.remove(stale)

    for n in _sweep_points(total):
        _restore(path, pre)
        for stale in (fresh_path, wal_path(fresh_path)):
            if os.path.exists(stale):
                os.remove(stale)
        crashed = _crash_at(path, storage, run_compact, n)
        assert crashed, f"crash point {n} of {total} never fired"

        assert _read(path) == pre, \
            f"{storage}/{shards}-shard compact: crash at event {n} " \
            f"mutated the original index"
        recovered = _open(path, storage)
        assert recovered.query(QUERY) == pre_answer
        recovered.close()

        if shards > 1 and os.path.exists(fresh_path):
            # Manifest-last: if the fresh store opens as a sharded
            # index at all, it must be complete and correct.
            try:
                fresh = _open(fresh_path, storage)
            except Exception:
                continue
            try:
                assert fresh.query(QUERY) == pre_answer
            finally:
                fresh.close()


@pytest.mark.parametrize("storage", BACKENDS)
def test_failed_fsync_surfaces_and_preserves_index(tmp_path,
                                                   storage) -> None:
    """A lying device fails the commit fsync: the caller sees an error
    and the on-disk index recovers to pre or post, never in between."""
    path = str(tmp_path / "idx.db")
    _build(path, storage, shards=1)
    pre = _read(path)

    plan = FaultPlan(fail_fsync=True)
    with inject(plan):
        index = _open(path, storage)
        plan.arm()
        with pytest.raises(CrashError):
            index.insert(NEW_KEY, NEW_VALUE)
        plan.disarm()
        drop_store(_store_of(index))

    pre_answer = _reference_answer(RECORDS)
    post_answer = _reference_answer(RECORDS + [(NEW_KEY, NEW_VALUE)])
    recovered = _open(path, storage)
    answer = recovered.query(QUERY)
    recovered.close()
    assert answer in (pre_answer, post_answer)
    del pre  # the byte images are exercised by the sweep tests above
