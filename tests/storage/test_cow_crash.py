"""COW commit crash sweep: pinned readers vs crashes mid-commit.

The MVCC commit protocol copies a dirty page's pre-image into version
history before overwriting it whenever a reader has a version pinned
(copy-on-write at commit).  This sweep crashes inside exactly those
commits -- an ingest-style ``insert_batch`` WAL group with a reader
pinned *before* the mutation -- and asserts the two halves of the
contract, on both disk backends and both layouts:

* the pinned reader never sees a torn page: its answer right after the
  crash is byte-for-byte the answer it pinned;
* recovery lands on a committed version: reopening runs WAL recovery
  and the file is byte-equivalent to the pre- or post-image, never a
  mix.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.shard import ShardedIndex
from repro.storage import CrashError, FaultPlan, inject
from repro.storage.faults import drop_store
from repro.storage.pager import wal_path

BACKENDS = ("diskhash", "btree")

RECORDS = [
    ("tim", "{USA, {UK, {cheese, {A, motorbike}}}}"),
    ("sue", "{USA, UK, {A, cheese}}"),
    ("ann", "{fr, {de, {A}}}"),
    ("bob", "{USA, {de, wine}}"),
    ("cat", "{UK, {wine, {B}}}"),
    ("dan", "{fr, cheese}"),
]
QUERY = "{USA}"
#: The ingest batch commits as ONE WAL group; every record matches
#: ``QUERY`` so a torn commit would change the answer visibly.
BATCH = [(f"gil{i}", "{USA, {novel%d, {A}}}" % i) for i in range(4)]


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _restore(path: str, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
    wal = wal_path(path)
    if os.path.exists(wal):
        os.remove(wal)


def _open(path: str, storage: str):
    return NestedSetIndex.open(storage, path)


def _store_of(index):
    if isinstance(index, ShardedIndex):
        return index.base_store
    return index.inverted_file.store


def _reference_answer(records) -> list[str]:
    index = NestedSetIndex.build(list(records))
    try:
        return index.query(QUERY)
    finally:
        index.close()


def _sweep_points(total: int, limit: int = 40) -> list[int]:
    if total <= limit:
        return list(range(1, total + 1))
    stride = (total + limit - 1) // limit
    points = list(range(1, total + 1, stride))
    if points[-1] != total:
        points.append(total)
    return points


def _count_events(path: str, storage: str) -> int:
    """One clean pinned-reader ingest run under a counting plan."""
    plan = FaultPlan()
    with inject(plan):
        index = _open(path, storage)
        with index.snapshot():
            plan.arm()
            index.insert_batch(BATCH)
            plan.disarm()
        index.close()
    return plan.events


def _crash_with_pinned_reader(path: str, storage: str, n: int,
                              pre_answer: list) -> bool:
    """Crash at event ``n`` of a COW commit; returns True if it fired.

    A reader pins the pre-mutation version first, so the commit must
    copy pre-images of every page it dirties; after the (torn) crash
    the pinned reader re-asks its query and must get its pinned answer.
    """
    plan = FaultPlan(crash_at=n, tear_bytes=3)
    with inject(plan):
        index = _open(path, storage)
        pinned = index.snapshot()
        assert pinned.query(QUERY) == pre_answer
        plan.arm()
        try:
            index.insert_batch(BATCH)
            plan.disarm()
            fired = False
        except CrashError:
            plan.disarm()
            fired = True
            # No torn page reaches the pinned reader: COW pre-images
            # shield its version from the half-applied commit.
            assert pinned.query(QUERY) == pre_answer, \
                f"pinned reader saw a torn state at event {n}"
        pinned.close()
        if fired:
            drop_store(_store_of(index))
        else:
            index.close()
    return fired


@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("shards", [1, 4])
def test_cow_commit_crash_sweep(tmp_path, storage, shards) -> None:
    path = str(tmp_path / "idx.db")
    NestedSetIndex.build(list(RECORDS), storage=storage, path=path,
                         shards=shards).close()
    pre = _read(path)
    pre_answer = _reference_answer(RECORDS)
    post_answer = _reference_answer(RECORDS + BATCH)

    total = _count_events(path, storage)
    post = _read(path)
    assert total >= 3, "COW commit produced suspiciously few events"
    assert post != pre

    fired_any = False
    for n in _sweep_points(total):
        _restore(path, pre)
        fired = _crash_with_pinned_reader(path, storage, n, pre_answer)
        assert fired, f"crash point {n} of {total} never fired"
        fired_any = True

        recovered = _open(path, storage)
        answer = recovered.query(QUERY)
        recovered.close()
        final = _read(path)
        assert final in (pre, post), \
            f"{storage}/{shards}-shard: crash at event {n} recovered " \
            f"to neither the pre- nor the post-commit image"
        assert answer == (pre_answer if final == pre else post_answer), \
            f"{storage}/{shards}-shard: wrong answer after crash at " \
            f"event {n}"
    assert fired_any
