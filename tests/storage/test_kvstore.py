"""Tests for the KVStore interface, memory store, and factory."""

from __future__ import annotations

import pytest

from repro.storage import (
    BPlusTree,
    DiskHashTable,
    MemoryKVStore,
    StorageError,
    StoreClosedError,
    open_store,
)


class TestMemoryKVStore:
    def test_basic_roundtrip(self) -> None:
        store = MemoryKVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.get(b"absent") is None
        assert len(store) == 1

    def test_delete(self) -> None:
        store = MemoryKVStore()
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert len(store) == 0

    def test_items(self) -> None:
        store = MemoryKVStore()
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert dict(store.items()) == {b"a": b"1", b"b": b"2"}

    def test_keys(self) -> None:
        store = MemoryKVStore()
        store.put(b"a", b"1")
        assert list(store.keys()) == [b"a"]

    def test_values_are_copied(self) -> None:
        store = MemoryKVStore()
        payload = bytearray(b"mutable")
        store.put(b"k", bytes(payload))
        payload[0] = ord("X")
        assert store.get(b"k") == b"mutable"

    def test_context_manager_closes(self) -> None:
        with MemoryKVStore() as store:
            store.put(b"k", b"v")
        with pytest.raises(StoreClosedError):
            store.get(b"k")

    def test_stats(self) -> None:
        store = MemoryKVStore()
        store.put(b"k", b"abc")
        store.get(b"k")
        store.get(b"missing")
        snap = store.stats.snapshot()
        assert snap["gets"] == 2
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["bytes_written"] == 3
        store.stats.reset()
        assert store.stats.gets == 0


class TestOpenStore:
    def test_memory(self) -> None:
        assert isinstance(open_store("memory"), MemoryKVStore)

    def test_diskhash(self, tmp_path) -> None:
        store = open_store("diskhash", str(tmp_path / "x.dh"), create=True)
        assert isinstance(store, DiskHashTable)
        store.close()

    def test_btree(self, tmp_path) -> None:
        store = open_store("btree", str(tmp_path / "x.bt"), create=True)
        assert isinstance(store, BPlusTree)
        store.close()

    def test_create_truncates_existing(self, tmp_path) -> None:
        path = str(tmp_path / "x.dh")
        store = open_store("diskhash", path, create=True)
        store.put(b"old", b"data")
        store.close()
        fresh = open_store("diskhash", path, create=True)
        assert fresh.get(b"old") is None
        fresh.close()

    def test_disk_requires_path(self) -> None:
        with pytest.raises(StorageError):
            open_store("diskhash")

    def test_unknown_kind(self) -> None:
        with pytest.raises(StorageError):
            open_store("rocksdb", "/tmp/x")


class TestInterfaceParity:
    """The three stores must be behaviorally interchangeable."""

    @pytest.mark.parametrize("kind", ["memory", "diskhash", "btree"])
    def test_same_behaviour(self, kind: str, tmp_path) -> None:
        path = str(tmp_path / f"s.{kind}")
        store = open_store(kind, path, create=True)
        operations = {f"key{i}".encode(): f"val{i}".encode() * (i + 1)
                      for i in range(50)}
        for key, value in operations.items():
            store.put(key, value)
        store.delete(b"key10")
        del operations[b"key10"]
        assert {k: v for k, v in store.items()} == operations
        assert len(store) == len(operations)
        store.close()
