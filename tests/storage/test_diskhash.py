"""Tests for the external-memory hash table."""

from __future__ import annotations

import random

import pytest

from repro.storage.diskhash import DiskHashTable
from repro.storage.errors import KeyTooLargeError, StoreClosedError


@pytest.fixture
def table(tmp_path) -> DiskHashTable:
    t = DiskHashTable(str(tmp_path / "t.dh"), create=True, n_buckets=64)
    yield t
    if not t._closed:
        t.close()


class TestBasicOps:
    def test_get_missing(self, table: DiskHashTable) -> None:
        assert table.get(b"nope") is None

    def test_put_get(self, table: DiskHashTable) -> None:
        table.put(b"k", b"v")
        assert table.get(b"k") == b"v"
        assert len(table) == 1

    def test_replace(self, table: DiskHashTable) -> None:
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == b"v2"
        assert len(table) == 1

    def test_delete(self, table: DiskHashTable) -> None:
        table.put(b"k", b"v")
        assert table.delete(b"k") is True
        assert table.get(b"k") is None
        assert len(table) == 0
        assert table.delete(b"k") is False

    def test_empty_value(self, table: DiskHashTable) -> None:
        table.put(b"k", b"")
        assert table.get(b"k") == b""

    def test_dunder_interface(self, table: DiskHashTable) -> None:
        table[b"k"] = b"v"
        assert b"k" in table
        assert table[b"k"] == b"v"
        del table[b"k"]
        assert b"k" not in table
        with pytest.raises(KeyError):
            table[b"k"]

    def test_key_too_large(self, table: DiskHashTable) -> None:
        with pytest.raises(KeyTooLargeError):
            table.put(b"x" * 5000, b"v")

    def test_closed_store_raises(self, table: DiskHashTable) -> None:
        table.close()
        with pytest.raises(StoreClosedError):
            table.get(b"k")


class TestLargeValues:
    def test_overflow_value(self, table: DiskHashTable) -> None:
        big = bytes(range(256)) * 100  # 25.6 KiB
        table.put(b"big", big)
        assert table.get(b"big") == big

    def test_overflow_replace_frees_chain(self, table: DiskHashTable) -> None:
        big = b"a" * 50_000
        table.put(b"big", big)
        pages_after_first = table._pager.n_pages
        table.put(b"big", b"b" * 50_000)
        # replacement must recycle the old chain, not leak pages
        assert table._pager.n_pages <= pages_after_first + 2
        assert table.get(b"big") == b"b" * 50_000

    def test_mixed_sizes(self, table: DiskHashTable) -> None:
        table.put(b"small", b"s")
        table.put(b"large", b"L" * 20_000)
        assert table.get(b"small") == b"s"
        assert table.get(b"large") == b"L" * 20_000


class TestBulkAndPersistence:
    def test_many_keys(self, tmp_path) -> None:
        table = DiskHashTable(str(tmp_path / "m.dh"), create=True,
                              n_buckets=32)
        for i in range(500):
            table.put(f"key{i}".encode(), f"value{i}".encode() * (i % 7 + 1))
        for i in range(500):
            assert table.get(f"key{i}".encode()) == \
                f"value{i}".encode() * (i % 7 + 1)
        assert len(table) == 500
        table.close()

    def test_items_iteration(self, table: DiskHashTable) -> None:
        expected = {f"k{i}".encode(): f"v{i}".encode() for i in range(40)}
        for key, value in expected.items():
            table.put(key, value)
        table.delete(b"k7")
        del expected[b"k7"]
        assert dict(table.items()) == expected

    def test_reopen(self, tmp_path) -> None:
        path = str(tmp_path / "p.dh")
        table = DiskHashTable(path, create=True, n_buckets=16)
        table.put(b"persist", b"me")
        table.put(b"big", b"B" * 30_000)
        table.close()
        reopened = DiskHashTable(path)
        assert reopened.get(b"persist") == b"me"
        assert reopened.get(b"big") == b"B" * 30_000
        assert len(reopened) == 2
        reopened.close()

    def test_fuzz_against_dict(self, tmp_path) -> None:
        rng = random.Random(99)
        table = DiskHashTable(str(tmp_path / "f.dh"), create=True,
                              n_buckets=8)
        model: dict[bytes, bytes] = {}
        keys = [f"k{i}".encode() for i in range(50)]
        for _step in range(1500):
            key = rng.choice(keys)
            op = rng.random()
            if op < 0.55:
                value = rng.randbytes(rng.choice((3, 30, 3000)))
                table.put(key, value)
                model[key] = value
            elif op < 0.8:
                assert table.get(key) == model.get(key)
            else:
                assert table.delete(key) == (model.pop(key, None) is not None)
        assert dict(table.items()) == model
        assert len(table) == len(model)
        table.close()


class TestStats:
    def test_hit_miss_counting(self, table: DiskHashTable) -> None:
        table.put(b"k", b"v")
        table.get(b"k")
        table.get(b"absent")
        assert table.stats.hits == 1
        assert table.stats.misses == 1
        assert table.stats.bytes_read == 1
        assert table.stats.puts == 1


class TestPageStability:
    """Regression: deletes excise records, so same-key churn must not
    grow the file (tombstone accumulation used to leak page space)."""

    def test_same_key_overwrites_stable_pages(self, tmp_path) -> None:
        table = DiskHashTable(str(tmp_path / "f.dh"), create=True,
                              n_buckets=8)
        for i in range(300):
            table.put(b"hot", b"v%d" % i * 7)
        settled = table._pager.n_pages
        for i in range(300):
            table.put(b"hot", b"v%d" % i * 7)
        assert table._pager.n_pages == settled
        assert table.get(b"hot") == b"v299" * 7
        assert len(table) == 1
        table.close()

    def test_overflow_churn_stable_pages(self, tmp_path) -> None:
        table = DiskHashTable(str(tmp_path / "f.dh"), create=True,
                              n_buckets=8)
        big = b"x" * 20_000  # several overflow pages per value
        for i in range(40):
            table.put(b"big", big + b"%d" % i)
        settled = table._pager.n_pages
        for i in range(40):
            table.put(b"big", big + b"%d" % i)
        assert table._pager.n_pages == settled
        table.close()

    def test_delete_then_reinsert_reuses_space(self, tmp_path) -> None:
        table = DiskHashTable(str(tmp_path / "f.dh"), create=True,
                              n_buckets=4)
        for round_no in range(50):
            for i in range(20):
                table.put(b"k%d" % i, b"payload-%d" % round_no)
            if round_no == 0:
                settled = table._pager.n_pages
            for i in range(20):
                assert table.delete(b"k%d" % i)
        assert table._pager.n_pages == settled
        assert len(table) == 0
        table.close()
