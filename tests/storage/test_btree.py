"""Tests for the external-memory B+tree."""

from __future__ import annotations

import random

import pytest

from repro.storage.btree import BPlusTree
from repro.storage.errors import KeyTooLargeError


@pytest.fixture
def tree(tmp_path) -> BPlusTree:
    t = BPlusTree(str(tmp_path / "t.bt"), create=True, page_size=512)
    yield t
    if not t._closed:
        t.close()


class TestBasicOps:
    def test_get_missing(self, tree: BPlusTree) -> None:
        assert tree.get(b"nope") is None

    def test_put_get(self, tree: BPlusTree) -> None:
        tree.put(b"k", b"v")
        assert tree.get(b"k") == b"v"
        assert len(tree) == 1

    def test_replace_keeps_count(self, tree: BPlusTree) -> None:
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k") == b"v2"
        assert len(tree) == 1

    def test_delete(self, tree: BPlusTree) -> None:
        tree.put(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.get(b"k") is None
        assert tree.delete(b"k") is False
        assert len(tree) == 0

    def test_key_too_large(self, tree: BPlusTree) -> None:
        with pytest.raises(KeyTooLargeError):
            tree.put(b"x" * 600, b"v")


class TestSplitsAndOrder:
    def test_many_sequential_keys_split_leaves(self, tree: BPlusTree) -> None:
        # 512-byte pages force plenty of leaf and internal splits.
        for i in range(800):
            tree.put(f"key{i:05d}".encode(), f"value{i}".encode())
        for i in range(800):
            assert tree.get(f"key{i:05d}".encode()) == f"value{i}".encode()
        assert len(tree) == 800

    def test_random_insert_order(self, tree: BPlusTree) -> None:
        keys = [f"k{i:04d}".encode() for i in range(500)]
        rng = random.Random(5)
        shuffled = keys[:]
        rng.shuffle(shuffled)
        for key in shuffled:
            tree.put(key, key[::-1])
        assert [key for key, _value in tree.items()] == sorted(keys)

    def test_items_sorted(self, tree: BPlusTree) -> None:
        for key in (b"mango", b"apple", b"pear", b"banana"):
            tree.put(key, b"x")
        assert [key for key, _ in tree.items()] == \
            [b"apple", b"banana", b"mango", b"pear"]

    def test_range_scan(self, tree: BPlusTree) -> None:
        for i in range(100):
            tree.put(f"{i:03d}".encode(), str(i).encode())
        got = [key for key, _ in tree.range(b"010", b"020")]
        assert got == [f"{i:03d}".encode() for i in range(10, 20)]

    def test_range_open_ended(self, tree: BPlusTree) -> None:
        for i in range(20):
            tree.put(f"{i:02d}".encode(), b"v")
        got = [key for key, _ in tree.range(b"15")]
        assert got == [f"{i:02d}".encode() for i in range(15, 20)]


class TestLargeValuesAndPersistence:
    def test_overflow_value(self, tree: BPlusTree) -> None:
        big = bytes(range(256)) * 40
        tree.put(b"big", big)
        assert tree.get(b"big") == big

    def test_reopen(self, tmp_path) -> None:
        path = str(tmp_path / "p.bt")
        tree = BPlusTree(path, create=True, page_size=512)
        for i in range(300):
            tree.put(f"k{i:04d}".encode(), f"v{i}".encode())
        tree.close()
        reopened = BPlusTree(path)
        assert len(reopened) == 300
        assert reopened.get(b"k0123") == b"v123"
        assert [k for k, _ in reopened.items()][:3] == \
            [b"k0000", b"k0001", b"k0002"]
        reopened.close()

    def test_fuzz_against_dict(self, tmp_path) -> None:
        rng = random.Random(77)
        tree = BPlusTree(str(tmp_path / "f.bt"), create=True, page_size=512)
        model: dict[bytes, bytes] = {}
        keys = [f"key{i:03d}".encode() for i in range(120)]
        for _step in range(2000):
            key = rng.choice(keys)
            op = rng.random()
            if op < 0.6:
                value = rng.randbytes(rng.choice((2, 40, 600)))
                tree.put(key, value)
                model[key] = value
            elif op < 0.85:
                assert tree.get(key) == model.get(key)
            else:
                assert tree.delete(key) == (model.pop(key, None) is not None)
        assert dict(tree.items()) == model
        tree.close()


class TestPageStability:
    """Regression: same-key churn must not grow the file (overflow
    chains are freed on overwrite and delete)."""

    def test_same_key_overwrites_stable_pages(self, tmp_path) -> None:
        tree = BPlusTree(str(tmp_path / "f.bt"), create=True)
        for i in range(300):
            tree.put(b"hot", b"v%d" % i * 7)
        settled = tree._pager.n_pages
        for i in range(300):
            tree.put(b"hot", b"v%d" % i * 7)
        assert tree._pager.n_pages == settled
        assert tree.get(b"hot") == b"v299" * 7
        tree.close()

    def test_overflow_churn_stable_pages(self, tmp_path) -> None:
        tree = BPlusTree(str(tmp_path / "f.bt"), create=True)
        big = b"x" * 20_000
        for i in range(40):
            tree.put(b"big", big + b"%d" % i)
        settled = tree._pager.n_pages
        for i in range(40):
            tree.put(b"big", big + b"%d" % i)
        assert tree._pager.n_pages == settled
        tree.close()
