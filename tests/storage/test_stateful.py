"""Stateful property tests: the stores must behave like a dict, always.

Hypothesis drives random operation sequences (put / replace / delete /
get / iterate / reopen) against each engine, comparing to a model dict
after every step.  Reopen closes and reopens the disk stores mid-run,
checking durability of every operation so far.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.storage import open_store

_KEYS = st.binary(min_size=1, max_size=24)
_VALUES = st.binary(max_size=600)


class _StoreMachine(RuleBasedStateMachine):
    """Shared rules; subclasses fix the engine kind."""

    kind = "memory"

    keys = Bundle("keys")

    def __init__(self) -> None:
        super().__init__()
        self.model: dict[bytes, bytes] = {}
        self.path: str | None = None
        self.store = None

    @initialize()
    def setup(self) -> None:
        if self.kind != "memory":
            import tempfile
            handle = tempfile.NamedTemporaryFile(delete=False,
                                                 suffix=f".{self.kind}")
            handle.close()
            self.path = handle.name
        self.store = open_store(self.kind, self.path, create=True,
                                **self._options())

    def _options(self) -> dict:
        if self.kind == "diskhash":
            return {"n_buckets": 8}          # force long chains
        if self.kind == "btree":
            return {"page_size": 512}        # force splits
        return {}

    @rule(target=keys, key=_KEYS)
    def remember_key(self, key: bytes) -> bytes:
        return key

    @rule(key=keys, value=_VALUES)
    def put(self, key: bytes, value: bytes) -> None:
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def get(self, key: bytes) -> None:
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete(self, key: bytes) -> None:
        assert self.store.delete(key) == (self.model.pop(key, None)
                                          is not None)

    @rule()
    def reopen(self) -> None:
        if self.kind == "memory":
            return
        self.store.close()
        self.store = open_store(self.kind, self.path, create=False)

    @invariant()
    def contents_match(self) -> None:
        if self.store is None:
            return
        assert len(self.store) == len(self.model)

    @rule()
    def full_scan(self) -> None:
        assert dict(self.store.items()) == self.model

    def teardown(self) -> None:
        if self.store is not None and not self.store._closed:
            self.store.close()
        if self.path and os.path.exists(self.path):
            os.remove(self.path)


class MemoryMachine(_StoreMachine):
    kind = "memory"


class DiskHashMachine(_StoreMachine):
    kind = "diskhash"


class BTreeMachine(_StoreMachine):
    kind = "btree"


_settings = settings(max_examples=25, stateful_step_count=30,
                     deadline=None)

TestMemoryStateful = pytest.mark.filterwarnings("ignore")(
    MemoryMachine.TestCase)
TestDiskHashStateful = DiskHashMachine.TestCase
TestBTreeStateful = BTreeMachine.TestCase
TestMemoryStateful.settings = _settings
TestDiskHashStateful.settings = _settings
TestBTreeStateful.settings = _settings
