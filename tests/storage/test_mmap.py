"""The lock-free mapped read path must stay MVCC-correct.

The pager maps the committed whole-page prefix of its file read-only and
serves clean-page reads from it without taking ``_io_lock``.  These
tests pin down the interesting edges: a pinned snapshot reader must keep
seeing its version while a writer overwrites pages and grows the file
past the mapped region (forcing remaps mid-read), reads past the mapped
prefix must fall back to the locked path, and a pager with the mapping
disabled must serve byte-identical results.
"""

from __future__ import annotations

import threading

import pytest

from repro.storage.pager import _REMAP_CHUNK_PAGES, Pager

PAGE = 4096


@pytest.fixture
def pager(tmp_path):
    p = Pager(str(tmp_path / "file.pg"), page_size=PAGE, create=True)
    yield p
    p.close()


def _payload(tag: int) -> bytes:
    return (b"page-%08d" % tag).ljust(PAGE, b"\xAB")


class TestMappedReads:
    def test_mvcc_info_reports_mapping(self, pager: Pager) -> None:
        info = pager.mvcc_info()
        assert info["mmap_enabled"] is True
        assert info["mapped_pages"] >= 1        # header page maps at open

    def test_disabled_mapping_reported_and_served(self, tmp_path) -> None:
        plain = Pager(str(tmp_path / "plain.pg"), page_size=PAGE,
                      create=True, use_mmap=False)
        try:
            info = plain.mvcc_info()
            assert info["mmap_enabled"] is False
            assert info["mapped_pages"] == 0
            page = plain.allocate()
            plain.write(page, _payload(1))
            assert plain.read(page) == _payload(1)
        finally:
            plain.close()

    def test_mapped_and_locked_paths_serve_same_bytes(self,
                                                      tmp_path) -> None:
        path = str(tmp_path / "both.pg")
        writer = Pager(path, page_size=PAGE, create=True)
        pages = []
        writer.begin()
        for tag in range(24):
            page = writer.allocate()
            writer.write(page, _payload(tag))
            pages.append(page)
        writer.commit()
        writer.close()

        mapped = Pager(path, page_size=PAGE)
        unmapped = Pager(path, page_size=PAGE, use_mmap=False)
        try:
            assert mapped.mvcc_info()["mapped_pages"] > 0
            for tag, page in enumerate(pages):
                assert mapped.read(page) == _payload(tag)
                assert unmapped.read(page) == mapped.read(page)
        finally:
            mapped.close()
            unmapped.close()

    def test_commit_extends_mapping_over_growth(self, pager: Pager) -> None:
        pager.begin()
        for tag in range(2 * _REMAP_CHUNK_PAGES):
            pager.write(pager.allocate(), _payload(tag))
        pager.commit()
        info = pager.mvcc_info()
        assert info["mapped_pages"] >= 2 * _REMAP_CHUNK_PAGES

    def test_reads_past_mapped_prefix_fall_back(self, pager: Pager) -> None:
        # Unjournaled growth below the remap chunk leaves the new pages
        # outside the mapping; the locked path must serve them anyway.
        page = pager.allocate()
        pager.write(page, _payload(7))
        assert page >= pager.mvcc_info()["mapped_pages"]
        assert pager.read(page) == _payload(7)


class TestSnapshotStabilityUnderGrowth:
    def test_pinned_reader_survives_growth_past_mapping(
            self, pager: Pager) -> None:
        # satellite: a reader pinned before the writer grows the file
        # past the mapped region (remapping as it goes) must keep seeing
        # its snapshot of an overwritten page.
        pager.begin()
        page = pager.allocate()
        pager.write(page, _payload(0))
        pager.commit()

        reader = pager.reader()
        pinned = reader.read(page)
        assert pinned == _payload(0)
        for round_no in range(1, 2 * _REMAP_CHUNK_PAGES):
            pager.begin()
            pager.write(pager.allocate(), _payload(1000 + round_no))
            pager.write(page, _payload(round_no))   # overwrite the snapshot
            pager.commit()
            assert reader.read(page) == pinned, round_no
        assert pager.mvcc_info()["mapped_pages"] > 2
        assert pager.read(page) != pinned           # live read sees latest
        reader.close()

    def test_reader_race_against_concurrent_growth(self,
                                                   pager: Pager) -> None:
        # A reader hammering the mapped path while commits remap under
        # it must never see torn or future bytes.
        pager.begin()
        page = pager.allocate()
        pager.write(page, _payload(0))
        pager.commit()
        reader = pager.reader()
        expected = reader.read(page)

        mismatches: list[bytes] = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                got = reader.read(page)
                if got != expected:
                    mismatches.append(got[:16])
                    return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for round_no in range(1, 3 * _REMAP_CHUNK_PAGES):
                pager.begin()
                pager.write(pager.allocate(), _payload(2000 + round_no))
                pager.write(page, _payload(round_no))
                pager.commit()
        finally:
            stop.set()
            thread.join()
        assert not mismatches
        reader.close()

    def test_unpinned_reads_see_every_commit(self, pager: Pager) -> None:
        pager.begin()
        page = pager.allocate()
        pager.commit()
        for round_no in range(40):
            pager.begin()
            pager.write(page, _payload(round_no))
            pager.commit()
            assert pager.read(page) == _payload(round_no)
