"""Unit and property tests for the binary codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.storage.codec import (
    CorruptionError,
    decode_postings,
    decode_str,
    decode_uint_list,
    decode_varint,
    encode_postings,
    encode_str,
    encode_uint_list,
    encode_varint,
    fnv1a_64,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 32, 2 ** 63])
    def test_roundtrip(self, value: int) -> None:
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_single_byte_for_small_values(self) -> None:
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_input(self) -> None:
        truncated = encode_varint(300)[:-1]
        with pytest.raises(CorruptionError):
            decode_varint(truncated)

    def test_offset_decoding(self) -> None:
        buf = encode_varint(7) + encode_varint(1000)
        first, pos = decode_varint(buf, 0)
        second, end = decode_varint(buf, pos)
        assert (first, second) == (7, 1000)
        assert end == len(buf)

    @given(st.integers(min_value=0, max_value=2 ** 64))
    def test_roundtrip_property(self, value: int) -> None:
        decoded, _pos = decode_varint(encode_varint(value))
        assert decoded == value


class TestUintList:
    def test_roundtrip(self) -> None:
        values = [0, 3, 3, 10, 1000]
        decoded, _pos = decode_uint_list(encode_uint_list(values))
        assert decoded == values

    def test_empty(self) -> None:
        decoded, pos = decode_uint_list(encode_uint_list([]))
        assert decoded == []
        assert pos == 1

    def test_unsorted_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_uint_list([5, 3])

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9)))
    def test_roundtrip_property(self, values: list[int]) -> None:
        ordered = sorted(values)
        decoded, _pos = decode_uint_list(encode_uint_list(ordered))
        assert decoded == ordered

    def test_delta_compression_is_compact(self) -> None:
        # Consecutive ids encode to one byte per entry after the count.
        values = list(range(1_000_000, 1_000_100))
        assert len(encode_uint_list(values)) <= 3 + 4 + 100


class TestPostings:
    def test_roundtrip(self) -> None:
        postings = [(1, (2, 5)), (7, ()), (9, (10,))]
        assert decode_postings(encode_postings(postings)) == postings

    def test_empty(self) -> None:
        assert decode_postings(encode_postings([])) == []

    def test_unsorted_heads_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_postings([(5, ()), (3, ())])

    def test_unsorted_children_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_postings([(1, (5, 2))])

    @given(st.lists(
        st.tuples(st.integers(0, 10 ** 6),
                  st.lists(st.integers(0, 10 ** 6), max_size=5))))
    def test_roundtrip_property(self, raw: list) -> None:
        postings = sorted((p, tuple(sorted(set(children))))
                          for p, children in
                          {p: c for p, c in raw}.items())
        assert decode_postings(encode_postings(postings)) == postings


class TestStr:
    @pytest.mark.parametrize("text", ["", "hello", "naïve ünïcode", "a" * 999])
    def test_roundtrip(self, text: str) -> None:
        decoded, _pos = decode_str(encode_str(text))
        assert decoded == text

    def test_truncated(self) -> None:
        with pytest.raises(CorruptionError):
            decode_str(encode_str("hello")[:-2])

    def test_sequential_decode(self) -> None:
        buf = encode_str("ab") + encode_str("cd")
        first, pos = decode_str(buf, 0)
        second, _pos = decode_str(buf, pos)
        assert (first, second) == ("ab", "cd")


class TestFnv:
    def test_deterministic(self) -> None:
        assert fnv1a_64(b"atom") == fnv1a_64(b"atom")

    def test_spread(self) -> None:
        hashes = {fnv1a_64(f"key{i}".encode()) for i in range(1000)}
        assert len(hashes) == 1000

    def test_known_vector(self) -> None:
        # FNV-1a 64-bit of empty input is the offset basis.
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_64_bit_range(self) -> None:
        assert 0 <= fnv1a_64(b"anything") < 2 ** 64
