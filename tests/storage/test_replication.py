"""Replication log semantics and promotion-safety crash sweep.

Two layers of coverage:

1. :class:`~repro.replication.log.ReplicationLog` unit tests -- durable
   sequence numbering across checkpoints and reopens, stamp-over-sidecar
   dominance, ack-gated truncation with the retention override, raw
   group shipping, and term persistence.

2. A ship -> replay -> promote crash sweep.  A primary index feeds a
   replica through the in-process :class:`ReplicationSource` /
   :class:`ReplicaTailer` pair (no sockets: the tailer's ``call`` is a
   local dispatcher), and every replica-side durability event during
   replay+promotion is a crash point.  After each injected crash the
   replica is reopened (running WAL recovery), resumes tailing from its
   durable horizon, promotes, and must answer byte-identically to the
   primary -- proving no committed group is ever lost and the fencing
   term always lands.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.engine import NestedSetIndex
from repro.replication import (ReplicaTailer, ReplicationLog,
                               ReplicationSource, split_shipped_label)
from repro.replication.log import (read_sidecar, sidecar_path,
                                   write_sidecar)
from repro.replication.shipper import base_store_of
from repro.replication.applier import bootstrap_from_primary
from repro.storage import CrashError, FaultPlan, inject
from repro.storage.faults import drop_store
from repro.storage.pager import wal_path
from repro.storage.wal import WriteAheadLog

BACKENDS = ("diskhash", "btree")

RECORDS = [
    ("tim", "{USA, {UK, {cheese, {A, motorbike}}}}"),
    ("sue", "{USA, UK, {A, cheese}}"),
    ("ann", "{fr, {de, {A}}}"),
    ("bob", "{USA, {de, wine}}"),
    ("cat", "{UK, {wine, {B}}}"),
    ("dan", "{fr, cheese}"),
    ("eve", "{de, {USA, {B, motorbike}}}"),
    ("fox", "{wine, {cheese}}"),
]

#: Mutations shipped to the replica after bootstrap: six inserts and a
#: delete, each one commit group.
MUTATIONS = [("insert", f"new{i}", "{USA, {novel, {A, c%d}}}" % (i % 3))
             for i in range(6)] + [("delete", "bob", None)]

QUERIES = ("{USA}", "{A}", "{UK, {A}}", "{USA, {novel}}", "{de}")


# ---------------------------------------------------------------------------
# ReplicationLog unit tests
# ---------------------------------------------------------------------------


class TestReplicationLog:
    def _log(self, tmp_path, **kwargs) -> ReplicationLog:
        return ReplicationLog(str(tmp_path / "log"), create=True, **kwargs)

    def test_commit_stamps_sequence_and_term(self, tmp_path) -> None:
        log = self._log(tmp_path)
        log.commit(b"alpha", [b"r1"])
        log.commit(b"beta", [b"r2", b"r3"])
        assert (log.base_seq, log.next_seq, log.last_seq) == (1, 3, 2)
        seen = []
        for _pos, label, records, _next in log.iter_groups():
            version, seq, term = split_shipped_label(label)
            seen.append((version, seq, term, records))
        assert seen == [(None, 1, 0, [b"r1"]), (None, 2, 0, [b"r2", b"r3"])]
        log.close()

    def test_sequence_continues_across_checkpoint_and_reopen(
            self, tmp_path) -> None:
        path = str(tmp_path / "log")
        log = ReplicationLog(path, create=True)
        for i in range(3):
            log.commit(b"g%d" % i, [b"x"])
        log.checkpoint()
        assert log.pending_groups == 0
        assert (log.base_seq, log.next_seq) == (4, 4)
        log.commit(b"after", [b"y"])
        assert log.last_seq == 4
        log.close()

        log = ReplicationLog(path)
        # Reopen: the stamped group on disk carries seq 4 forward.
        assert (log.base_seq, log.last_seq, log.next_seq) == (4, 4, 5)
        log.close()

    def test_stamps_dominate_sidecar_floor(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        log = ReplicationLog(path, create=True)
        for i in range(3):
            log.commit(b"g%d" % i, [b"x"])
        log.close()
        # Simulate the crash window where the sidecar was written ahead
        # of a truncate that never happened: floor says 100, but groups
        # 1..3 are still on disk and their stamps are authoritative.
        write_sidecar(sidecar_path(path), 100, 0)
        log = ReplicationLog(path)
        assert (log.base_seq, log.next_seq) == (1, 4)
        log.close()

    def test_checkpoint_gated_on_follower_acks(self, tmp_path) -> None:
        log = self._log(tmp_path)
        for i in range(4):
            log.commit(b"g%d" % i, [b"x" * 32])
        log.register_follower("r1", 1)
        log.checkpoint()
        assert log.pending_groups == 4, "truncated under a laggard"
        assert log.checkpoints_deferred == 1
        log.ack("r1", log.last_seq)
        log.checkpoint()
        assert log.pending_groups == 0
        assert read_sidecar(sidecar_path(log.path)) == (5, 0)
        log.close()

    def test_retention_window_overrides_laggard(self, tmp_path) -> None:
        log = self._log(tmp_path, retain_bytes=64)
        for i in range(4):
            log.commit(b"g%d" % i, [b"x" * 64])
        log.register_follower("slow", 0)
        assert log.size > log.retain_bytes
        log.checkpoint()
        assert log.pending_groups == 0, "retention window did not override"
        with pytest.raises(LookupError):
            log.read_raw_groups(1)
        log.close()

    def test_ack_never_regresses(self, tmp_path) -> None:
        log = self._log(tmp_path)
        log.register_follower("r1", 5)
        log.ack("r1", 3)
        assert log.followers() == {"r1": 5}
        log.ack("r1", 9)
        assert log.min_acked() == 9
        log.forget_follower("r1")
        assert log.min_acked() is None
        log.close()

    def test_read_raw_groups_roundtrip(self, tmp_path) -> None:
        log = self._log(tmp_path)
        for i in range(5):
            log.commit(b"lbl%d" % i, [b"rec%d" % i])
        first, count, data = log.read_raw_groups(2, max_groups=2)
        assert (first, count) == (2, 2)
        pos, labels = 0, []
        for _ in range(count):
            label, records, pos = WriteAheadLog._parse_group(data, pos)
            seq = split_shipped_label(label)[1]
            labels.append((seq, records))
        assert pos == len(data)
        assert labels == [(2, [b"rec1"]), (3, [b"rec2"])]
        # Past the end: empty run, not an error.
        assert log.read_raw_groups(6) == (6, 0, b"")
        # A byte cap below two groups still ships at least one.
        _first, count, _data = log.read_raw_groups(1, max_bytes=1)
        assert count == 1
        log.close()

    def test_term_persists_and_adopts_forward_only(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        log = ReplicationLog(path, create=True)
        assert log.bump_term() == 1
        log.adopt_term(5)
        assert log.term == 5
        log.adopt_term(3)            # never backwards
        assert log.term == 5
        log.commit(b"fenced", [b"x"])
        log.close()
        log = ReplicationLog(path)
        assert log.term == 5
        assert split_shipped_label(next(log.iter_groups())[1])[2] == 5
        log.close()

    def test_on_commit_hook_reports_last_seq(self, tmp_path) -> None:
        log = self._log(tmp_path)
        seen: list[int] = []
        log.on_commit = seen.append
        log.commit(b"a", [b"x"])
        log.commit(b"b", [b"y"])
        assert seen == [1, 2]
        log.close()


class TestWalStreaming:
    """Offset-based group iteration (shared by recovery and tailing)."""

    def test_iter_groups_resumes_from_offset(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        for i in range(3):
            wal.commit(b"g%d" % i, [b"rec%d" % i])
        full = list(wal.iter_groups())
        assert [label for _p, label, _r, _n in full] == [b"g0", b"g1", b"g2"]
        resume_at = full[0][3]       # next_offset of the first group
        tail = list(wal.iter_groups(resume_at))
        assert [label for _p, label, _r, _n in tail] == [b"g1", b"g2"]
        assert tail == full[1:]
        wal.close()

    def test_iter_groups_stops_at_torn_tail(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"whole", [b"x"])
        wal.commit(b"torn", [b"y"])
        wal.close()
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(raw[:-4])
        wal = WriteAheadLog(path)
        assert [label for _p, label, _r, _n in wal.iter_groups()] \
            == [b"whole"]
        wal.close()


# ---------------------------------------------------------------------------
# Ship -> replay -> promote crash sweep
# ---------------------------------------------------------------------------


def _local_call(source: ReplicationSource):
    """Dispatch replication requests straight onto a source (no wire)."""
    def call(request: dict) -> dict:
        op = request["op"]
        if op == "repl_bootstrap":
            return source.bootstrap(request["replica_id"])
        if op == "repl_pages":
            return source.pages(request["session"], request["start_page"],
                                request["count"])
        if op == "repl_done":
            return source.done(request["session"])
        if op == "repl_fetch":
            return source.fetch(request["replica_id"],
                                request["after_seq"],
                                max_groups=request.get("max_groups", 256))
        raise AssertionError(f"unexpected op {op!r}")
    return call


def _replay_and_promote(replica, call) -> ReplicaTailer:
    """Synchronous tail: fetch-apply to the log end, then promote."""
    tailer = ReplicaTailer(replica, call, replica_id="crash-sweep",
                           primary_address="in-process")
    while True:
        reply = call({"op": "repl_fetch", "replica_id": "crash-sweep",
                      "after_seq": tailer.applied_seq, "max_groups": 3})
        assert reply["status"] == "ok", reply
        tailer._apply_reply(reply)
        if reply["count"] == 0 and tailer.applied_seq >= reply["end_seq"]:
            break
    tailer.promote()
    return tailer


def _answers(index) -> bytes:
    """Canonical byte serialization of every probe query's answer."""
    return json.dumps({q: sorted(index.query(q)) for q in QUERIES},
                      sort_keys=True).encode("ascii")


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _restore_replica(path: str, store_bytes: bytes,
                     sidecar_bytes: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(store_bytes)
    log = wal_path(path)
    if os.path.exists(log):
        os.remove(log)
    with open(sidecar_path(log), "wb") as handle:
        handle.write(sidecar_bytes)


def _sweep_points(total: int, limit: int = 20) -> list[int]:
    if total <= limit:
        return list(range(1, total + 1))
    stride = (total + limit - 1) // limit
    points = list(range(1, total + 1, stride))
    if points[-1] != total:
        points.append(total)
    return points


@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("shards", [1, 4])
def test_promotion_crash_sweep(tmp_path, storage, shards) -> None:
    primary_path = str(tmp_path / "primary.db")
    replica_path = str(tmp_path / "replica.db")
    NestedSetIndex.build(list(RECORDS), storage=storage, path=primary_path,
                         shards=shards).close()
    primary = NestedSetIndex.open(storage, primary_path,
                                  wal_factory=ReplicationLog)
    try:
        source = ReplicationSource(primary)
        call = _local_call(source)
        bootstrap_from_primary(call, replica_path, "crash-sweep")
        # Commit the mutation stream on the primary *after* the snapshot
        # so every group must arrive via shipping.
        for op, key, value in MUTATIONS:
            if op == "insert":
                primary.insert(key, value)
            else:
                primary.delete(key)
        primary_log = base_store_of(primary).pager.wal
        primary_last = primary_log.last_seq
        assert primary_last - (primary_log.base_seq - 1) >= len(MUTATIONS)
        expected = _answers(primary)

        pre_store = _read(replica_path)
        pre_sidecar = _read(sidecar_path(wal_path(replica_path)))

        # Clean run under a counting plan: learn the number of replica-
        # side durability events and prove basic parity.
        plan = FaultPlan()
        with inject(plan):
            replica = NestedSetIndex.open(storage, replica_path,
                                          wal_factory=ReplicationLog)
            plan.arm()
            tailer = _replay_and_promote(replica, call)
            plan.disarm()
            assert tailer.applied_seq == primary_last
            assert _answers(replica) == expected
            replica.close()
        total = plan.events
        assert total >= 3, "replay produced suspiciously few events"

        crashes = 0
        for point in _sweep_points(total):
            _restore_replica(replica_path, pre_store, pre_sidecar)
            crash_plan = FaultPlan(crash_at=point, tear_bytes=3)
            with inject(crash_plan):
                replica = NestedSetIndex.open(storage, replica_path,
                                              wal_factory=ReplicationLog)
                crash_plan.arm()
                try:
                    _replay_and_promote(replica, call)
                    crash_plan.disarm()
                    replica.close()
                    crashed = False
                except CrashError:
                    crash_plan.disarm()
                    drop_store(base_store_of(replica))
                    crashed = True
            if not crashed:
                continue
            crashes += 1
            # Reopen (recovery), resume tailing from the durable
            # horizon, promote -- nothing committed may be lost.
            replica = NestedSetIndex.open(storage, replica_path,
                                          wal_factory=ReplicationLog)
            tailer = _replay_and_promote(replica, call)
            log = base_store_of(replica).pager.wal
            assert tailer.applied_seq == primary_last, \
                f"crash point {point}: lost committed groups"
            assert log.term == primary_log.term + 1, \
                f"crash point {point}: promotion term did not land"
            assert _answers(replica) == expected, \
                f"crash point {point}: promoted replica diverged"
            replica.close()
        assert crashes > 0, "sweep never crashed; plan miscounted events"
    finally:
        primary.close()


@pytest.mark.parametrize("storage", BACKENDS)
def test_promoted_replica_continues_sequence(tmp_path, storage) -> None:
    """After promotion the replica's log extends the primary's numbering."""
    primary_path = str(tmp_path / "primary.db")
    replica_path = str(tmp_path / "replica.db")
    NestedSetIndex.build(list(RECORDS), storage=storage,
                         path=primary_path).close()
    primary = NestedSetIndex.open(storage, primary_path,
                                  wal_factory=ReplicationLog)
    try:
        source = ReplicationSource(primary)
        call = _local_call(source)
        bootstrap_from_primary(call, replica_path, "r1")
        for op, key, value in MUTATIONS:
            if op == "insert":
                primary.insert(key, value)
            else:
                primary.delete(key)
        primary_last = base_store_of(primary).pager.wal.last_seq
        replica = NestedSetIndex.open(storage, replica_path,
                                      wal_factory=ReplicationLog)
        tailer = _replay_and_promote(replica, call)
        assert tailer.applied_seq == primary_last
        replica.insert("post-promote", "{USA, {fresh}}")
        log = base_store_of(replica).pager.wal
        assert log.last_seq == primary_last + 1
        assert log.term == 1
        # The new group is stamped with the bumped term: a fetch from
        # the old primary's lineage would fail the fence.
        _first, count, data = log.read_raw_groups(primary_last + 1)
        assert count == 1
        label, _records, _pos = WriteAheadLog._parse_group(data, 0)
        assert split_shipped_label(label)[1:] == (primary_last + 1, 1)
        assert sorted(replica.query("{USA, {fresh}}")) == ["post-promote"]
        replica.close()
    finally:
        primary.close()
