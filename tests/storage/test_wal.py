"""Tests for the write-ahead log and the pager's transactions."""

from __future__ import annotations

import os
import struct

import pytest

from repro.storage import DiskHashTable, wal_path
from repro.storage.errors import StorageError
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestWriteAheadLog:
    def test_commit_and_recover_roundtrip(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"first", [b"rec-a", b"rec-b"])
        wal.commit(b"second", [b"rec-c"])
        assert wal.pending_groups == 2
        wal.close()

        replayed: list[tuple[bytes, list[bytes]]] = []
        wal = WriteAheadLog(path)
        counts = wal.recover(lambda label, recs: replayed.append(
            (label, recs)))
        assert counts == (2, 0)
        assert replayed == [(b"first", [b"rec-a", b"rec-b"]),
                            (b"second", [b"rec-c"])]
        wal.checkpoint()
        assert wal.pending_groups == 0
        assert wal.size == 6  # just the file header
        wal.close()

    def test_torn_tail_discarded(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"ok", [b"payload"])
        wal.commit(b"torn", [b"payload-2"])
        wal.close()
        # Tear the second group: keep the first intact.
        raw = _read(path)
        with open(path, "wb") as handle:
            handle.write(raw[:-5])

        replayed = []
        wal = WriteAheadLog(path)
        counts = wal.recover(lambda label, recs: replayed.append(label))
        assert counts == (1, 1)
        assert replayed == [b"ok"]
        wal.close()

    def test_corrupt_crc_discards_group_and_successors(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"a", [b"x" * 32])
        first_end = wal.size
        wal.commit(b"b", [b"y" * 32])
        wal.close()
        raw = bytearray(_read(path))
        raw[first_end - 3] ^= 0xFF  # flip a byte inside group 1's body
        with open(path, "wb") as handle:
            handle.write(bytes(raw))

        replayed = []
        wal = WriteAheadLog(path)
        counts = wal.recover(lambda label, recs: replayed.append(label))
        # Group boundaries cannot be trusted past a bad checksum: the
        # scan stops there, even though a later group may be intact.
        assert counts == (0, 1)
        assert replayed == []
        wal.close()

    def test_create_removes_stale_log(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"stale", [b"old"])
        wal.close()
        wal = WriteAheadLog(path, create=True)
        assert wal.recover(lambda *a: pytest.fail("nothing to replay")) \
            == (0, 0)
        wal.close()

    def test_torn_header_resets(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        with open(path, "wb") as handle:
            handle.write(b"NC")  # torn 2 of 6 header bytes
        wal = WriteAheadLog(path)
        assert wal.recover(lambda *a: None) == (0, 0)
        wal.commit(b"after", [b"fine"])
        wal.close()

    def test_describe_counters(self, tmp_path) -> None:
        path = str(tmp_path / "log")
        wal = WriteAheadLog(path, create=True)
        wal.commit(b"m", [b"r1", b"r2"])
        info = wal.describe()
        assert info["commits"] == 1
        assert info["records_logged"] == 2
        assert info["pending_groups"] == 1
        assert info["syncs"] == 1
        wal.checkpoint()
        assert wal.describe()["checkpoints"] == 1
        wal.close()


class TestPagerTransactions:
    def test_commit_applies_and_persists(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        pager.begin(b"txn")
        page = pager.allocate()
        pager.write(page, b"hello")
        assert pager.read(page).startswith(b"hello")  # read-your-writes
        pager.commit()
        pager.close()
        reopened = Pager(path)
        assert reopened.read(page).startswith(b"hello")
        reopened.close()

    def test_buffered_until_commit(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        page = pager.allocate()
        pager.write(page, b"before")
        pager.sync()
        pager.begin(b"txn")
        pager.write(page, b"after")
        # The main file still holds the pre-image mid-transaction (the
        # dirty page lives in memory, not in any file buffer).
        raw = _read(path)
        assert b"before" in raw and b"after" not in raw
        pager.commit()
        pager.sync()
        assert b"after" in _read(path)
        pager.close()

    def test_abort_restores_state(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        page = pager.allocate()
        pager.write(page, b"keep")
        n_pages = pager.n_pages
        pager.begin(b"txn")
        extra = pager.allocate()
        pager.write(extra, b"drop")
        pager.write(page, b"clobber")
        pager.abort()
        assert pager.n_pages == n_pages
        assert pager.read(page).startswith(b"keep")
        pager.close()

    def test_nested_commit_is_one_group(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        pager.begin(b"outer")
        a = pager.allocate()
        pager.begin(b"inner")
        pager.write(a, b"x")
        pager.commit()
        assert pager.txn_depth == 1
        pager.commit()
        assert pager.wal_info()["commits"] == 1
        pager.close()

    def test_commit_outside_txn_raises(self, tmp_path) -> None:
        pager = Pager(str(tmp_path / "f.pg"), create=True)
        with pytest.raises(StorageError):
            pager.commit()
        pager.close()

    def test_recovery_on_open_replays_committed_group(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        pager.begin(b"txn")
        page = pager.allocate()
        pager.write(page, b"durable")
        pager.commit()
        # Simulate a crash after the WAL fsync but before the pages hit
        # the main file: rewind the main file to its pre-commit image
        # while keeping the log.
        wal_bytes = _read(wal_path(path))
        main_bytes = _read(path)
        pager.close()
        with open(path, "wb") as handle:
            handle.write(main_bytes[:256])  # header page only
        with open(wal_path(path), "wb") as handle:
            handle.write(wal_bytes)

        reopened = Pager(path)
        assert reopened.recovered_groups == 1
        assert reopened.read(page).startswith(b"durable")
        assert reopened.wal_info()["pending_groups"] == 0  # checkpointed
        reopened.close()

    def test_recovery_is_idempotent_at_pager_level(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, page_size=256, create=True)
        pager.begin(b"txn")
        page = pager.allocate()
        pager.write(page, b"twice-safe")
        pager.commit()
        wal_bytes = _read(wal_path(path))
        pager.close()
        once = _read(path)
        # A crash *during recovery* leaves the log in place: the next
        # open replays the same groups over the already-applied pages.
        with open(wal_path(path), "wb") as handle:
            handle.write(wal_bytes)
        reopened = Pager(path)
        assert reopened.recovered_groups == 1
        reopened.close()
        assert _read(path) == once

    def test_wal_disabled(self, tmp_path) -> None:
        path = str(tmp_path / "f.pg")
        pager = Pager(path, create=True, wal=False)
        pager.begin(b"txn")  # silently a no-op
        page = pager.allocate()
        pager.write(page, b"direct")
        pager.commit()
        assert pager.wal_info() is None
        pager.close()
        assert not os.path.exists(wal_path(path))

    def test_empty_transaction_writes_no_group(self, tmp_path) -> None:
        pager = Pager(str(tmp_path / "f.pg"), create=True)
        pager.begin(b"noop")
        pager.commit()
        assert pager.wal_info()["commits"] == 0
        pager.close()


class TestStoreTransactionSurface:
    def test_transaction_commits_on_success(self, tmp_path) -> None:
        store = DiskHashTable(str(tmp_path / "h.db"), create=True)
        with store.transaction(b"ins"):
            store.put(b"k", b"v")
        assert store.wal_info()["commits"] == 1
        store.close()
        store = DiskHashTable(str(tmp_path / "h.db"))
        assert store.get(b"k") == b"v"
        store.close()

    def test_transaction_aborts_on_error(self, tmp_path) -> None:
        store = DiskHashTable(str(tmp_path / "h.db"), create=True)
        store.put(b"seed", b"1")
        with pytest.raises(RuntimeError):
            with store.transaction(b"bad"):
                store.put(b"k", b"v")
                raise RuntimeError("boom")
        assert store.get(b"k") is None
        assert store.get(b"seed") == b"1"
        assert len(store) == 1
        store.close()


# -- property: recovery is idempotent ---------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_PAGE = 64

_group_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.binary(min_size=_PAGE, max_size=_PAGE)),
    min_size=1, max_size=4)


def _apply_to(path: str):
    def apply(label: bytes, records: list[bytes]) -> None:
        with open(path, "r+b") as handle:
            for record in records:
                page_id = struct.unpack_from("<Q", record, 0)[0]
                data = record[8:]
                handle.seek(page_id * len(data))
                handle.write(data)
    return apply


@settings(max_examples=40, deadline=None)
@given(groups=st.lists(_group_strategy, min_size=1, max_size=6),
       torn_bytes=st.integers(min_value=0, max_value=12))
def test_recovery_idempotent_property(tmp_path_factory, groups,
                                      torn_bytes) -> None:
    """Replaying the WAL twice yields the same bytes as replaying once.

    Models a crash during recovery itself: the first open replays the
    log and dies before the checkpoint; the second open replays the
    same (possibly torn) log again over the already-patched file.
    """
    base = tmp_path_factory.mktemp("walprop")
    log_path = str(base / "log")
    target = str(base / "target")
    wal = WriteAheadLog(log_path, create=True, sync=False)
    for group_no, group in enumerate(groups):
        records = [struct.pack("<Q", page_id) + payload
                   for page_id, payload in group]
        wal.commit(b"g%d" % group_no, records)
    wal.close()
    if torn_bytes:
        raw = _read(log_path)
        with open(log_path, "wb") as handle:
            handle.write(raw[:max(6, len(raw) - torn_bytes)])

    with open(target, "wb") as handle:
        handle.write(b"\x00" * _PAGE)

    wal = WriteAheadLog(log_path)
    first = wal.recover(_apply_to(target))
    wal.close()
    once = _read(target)

    wal = WriteAheadLog(log_path)
    second = wal.recover(_apply_to(target))
    wal.close()
    assert second == first
    assert _read(target) == once
