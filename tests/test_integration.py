"""End-to-end integration tests across every subsystem.

Each test exercises the full stack the way the paper's experiments do:
generate a collection, build the index (memory and disk engines), sample
the benchmark workload, run both algorithms under several configurations,
and cross-check against the naive oracle.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    DATASETS,
    generate_dataset,
    run_benchmark_queries,
)
from repro.core.engine import NestedSetIndex
from repro.core.naive import reference_query
from repro.core.matchspec import QuerySpec
from repro.data.queries import make_benchmark_queries, verify_workload


@pytest.mark.parametrize("dataset", DATASETS)
def test_dataset_pipeline(dataset: str) -> None:
    """Every named collection supports the full experiment protocol."""
    records = list(generate_dataset(dataset, 80, seed=3))
    index = NestedSetIndex.build(records, cache="frequency")
    workload = make_benchmark_queries(records, 20, seed=3)
    verify_workload(workload, records)
    for algorithm in ("topdown", "bottomup"):
        run_benchmark_queries(index, workload, algorithm, check=True)


@pytest.mark.parametrize("storage", ["memory", "diskhash", "btree"])
def test_storage_engines_agree(storage: str, tmp_path) -> None:
    """The three storage engines return identical query answers."""
    records = list(generate_dataset("zipf-wide", 120, seed=5))
    path = str(tmp_path / f"ix.{storage}") if storage != "memory" else None
    index = NestedSetIndex.build(records, storage=storage, path=path)
    workload = make_benchmark_queries(records, 12, seed=5)
    for bench in workload:
        expect = reference_query(records, bench.query, QuerySpec())
        assert index.query(bench.query) == expect
    index.close()


def test_reopened_disk_index_full_protocol(tmp_path) -> None:
    """Build on disk, close, reopen, and run the checked workload."""
    records = list(generate_dataset("twitter", 100, seed=7))
    path = str(tmp_path / "tw.idx")
    NestedSetIndex.build(records, storage="diskhash", path=path).close()
    index = NestedSetIndex.open("diskhash", path, cache="frequency")
    workload = make_benchmark_queries(records, 16, seed=7)
    for algorithm in ("topdown", "bottomup", "topdown-paper"):
        run_benchmark_queries(index, workload, algorithm, check=True)
    stats = index.stats()
    assert stats["cache"]["hits"] > 0  # the frequency cache engaged
    index.close()


def test_all_configurations_on_one_collection() -> None:
    """semantics × join × algorithm sweep against the oracle."""
    records = list(generate_dataset("dblp", 60, seed=11))
    index = NestedSetIndex.build(records)
    queries = [tree for _key, tree in records[:6]]
    combos = [
        {"semantics": "hom"}, {"semantics": "iso"}, {"semantics": "homeo"},
        {"join": "equality"}, {"join": "superset"},
        {"join": "overlap", "epsilon": 2},
        {"mode": "anywhere"},
    ]
    for query in queries:
        for combo in combos:
            spec = QuerySpec(**combo)
            expect = reference_query(records, query, spec)
            for algorithm in ("topdown", "bottomup"):
                got = index.query(query, algorithm=algorithm, **combo)
                assert got == expect, (combo, algorithm)


def test_cache_policies_do_not_change_results() -> None:
    records = list(generate_dataset("zipf-deep", 40, seed=13))
    index = NestedSetIndex.build(records)
    workload = make_benchmark_queries(records, 10, seed=13)
    baseline = [index.query(b.query) for b in workload]
    for policy in ("frequency", "lru"):
        index.set_cache(policy, budget=50)
        assert [index.query(b.query) for b in workload] == baseline
        # run twice so the cache actually serves hits
        assert [index.query(b.query) for b in workload] == baseline
        assert index.inverted_file.cache.stats.hits > 0


def test_bloom_prefilter_agrees_with_index() -> None:
    records = list(generate_dataset("uniform-wide", 80, seed=17))
    index = NestedSetIndex.build(records, bloom="depth")
    workload = make_benchmark_queries(records, 12, seed=17)
    for bench in workload:
        indexed = index.query(bench.query)
        scanned = index.query(bench.query, algorithm="naive",
                              use_bloom=True)
        assert indexed == scanned


def test_containment_join_matches_naive_nested_loops() -> None:
    from repro.core.naive import naive_containment_join
    records = list(generate_dataset("dblp", 40, seed=19))
    index = NestedSetIndex.build(records)
    queries = [(f"q{i}", tree) for i, (_k, tree) in enumerate(records[:8])]
    assert sorted(index.containment_join(queries)) == \
        sorted(naive_containment_join(queries, records))
