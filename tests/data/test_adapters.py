"""Tests for the JSON and XML adapters."""

from __future__ import annotations

from repro.core.model import NestedSet
from repro.core.semantics import hom_contains
from repro.data.json_adapter import (
    json_query,
    json_text_to_nested,
    json_to_nested,
    scalar_atom,
)
from repro.data.xml_adapter import (
    element_to_nested,
    xml_query,
    xml_text_to_nested,
)

N = NestedSet


class TestScalarAtoms:
    def test_mapping(self) -> None:
        assert scalar_atom("s") == "s"
        assert scalar_atom(5) == 5
        assert scalar_atom(2.5) == "2.5"
        assert scalar_atom(True) == "true"
        assert scalar_atom(False) == "false"
        assert scalar_atom(None) == "null"


class TestJsonMapping:
    def test_object_scalars(self) -> None:
        tree = json_to_nested({"name": "sue", "age": 30})
        assert tree.atoms == {"name=sue", "age=30"}
        assert not tree.children

    def test_nested_object_gets_field_marker(self) -> None:
        tree = json_to_nested({"user": {"name": "tim"}})
        (child,) = tree.children
        assert "@user" in child.atoms
        assert "name=tim" in child.atoms

    def test_array_of_scalars(self) -> None:
        tree = json_to_nested({"tags": ["a", "b"]})
        (child,) = tree.children
        assert child.atoms == {"@tags", "a", "b"}

    def test_array_of_objects(self) -> None:
        tree = json_to_nested({"items": [{"x": 1}, {"x": 2}]})
        (items,) = tree.children
        assert len(items.children) == 2

    def test_scalar_document(self) -> None:
        assert json_to_nested("hello") == N(["hello"])
        assert json_to_nested(None) == N(["null"])

    def test_duplicate_array_members_collapse(self) -> None:
        tree = json_to_nested(["a", "a", {"x": 1}, {"x": 1}])
        assert tree.atoms == {"a"}
        assert len(tree.children) == 1

    def test_text_parsing(self) -> None:
        tree = json_text_to_nested('{"k": [1, {"m": true}]}')
        assert len(tree.children) == 1

    def test_query_fragment_contained_in_full_document(self) -> None:
        document = {
            "user": {"name": "tim", "city": "boston", "verified": True},
            "tags": ["db", "sets", "xml"],
            "lang": "en",
        }
        fragment = {"user": {"name": "tim"}, "tags": ["db"]}
        assert hom_contains(json_to_nested(document), json_query(fragment))
        wrong = {"user": {"name": "sue"}}
        assert not hom_contains(json_to_nested(document), json_query(wrong))


class TestXmlMapping:
    def test_element_atoms(self) -> None:
        tree = xml_text_to_nested('<author role="editor">A. Turing</author>')
        assert tree.atoms == {"#author", "@role=editor",
                              "author=A. Turing"}

    def test_children(self) -> None:
        tree = xml_text_to_nested(
            "<article><author>X</author><year>2013</year></article>")
        assert tree.atoms == {"#article"}
        tags = {next(iter(a for a in c.atoms if str(a).startswith("#")))
                for c in tree.children}
        assert tags == {"#author", "#year"}

    def test_whitespace_only_text_ignored(self) -> None:
        tree = xml_text_to_nested("<a>\n  <b>x</b>\n</a>")
        assert tree.atoms == {"#a"}

    def test_repeated_identical_children_collapse(self) -> None:
        tree = xml_text_to_nested("<a><b>x</b><b>x</b></a>")
        assert len(tree.children) == 1

    def test_query_fragment_contained(self) -> None:
        document = xml_text_to_nested(
            '<article key="k1"><author>A</author><author>B</author>'
            "<year>2013</year><journal>EDBT</journal></article>")
        fragment = xml_query("<article><author>A</author>"
                             "<journal>EDBT</journal></article>")
        assert hom_contains(document, fragment)
        wrong = xml_query("<article><author>C</author></article>")
        assert not hom_contains(document, wrong)

    def test_element_api(self) -> None:
        import xml.etree.ElementTree as ET
        elem = ET.Element("x")
        elem.text = "payload"
        assert element_to_nested(elem).atoms == {"#x", "x=payload"}
