"""Tests for the Table 3 synthetic generators."""

from __future__ import annotations

import random

import pytest

from repro.data.synthetic import (
    DEEP,
    SHAPES,
    WIDE,
    DatasetSpec,
    ShapeParams,
    collection_profile,
    generate_collection,
    generate_nested_set,
)
from repro.data.zipf import UniformSampler


class TestTable3Parameters:
    """The generator parameters must match Table 3 of the paper."""

    def test_wide(self) -> None:
        assert WIDE.max_leaves == 12
        assert WIDE.max_internal == 6
        assert WIDE.stop_probability == 0.8

    def test_deep(self) -> None:
        assert DEEP.max_leaves == 2
        assert DEEP.max_internal == 3
        assert DEEP.stop_probability == 0.2

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            ShapeParams(0, 1, 0.5, 4)       # empty sets forbidden
        with pytest.raises(ValueError):
            ShapeParams(1, 0, 0.5, 4)
        with pytest.raises(ValueError):
            ShapeParams(1, 1, 0.0, 4)       # would never stop
        with pytest.raises(ValueError):
            ShapeParams(1, 1, 0.5, 0)


class TestGeneratedShape:
    @pytest.mark.parametrize("shape", ["wide", "deep"])
    def test_structure_bounds(self, shape: str) -> None:
        params = SHAPES[shape]
        rng = random.Random(1)
        sampler = UniformSampler(1000, rng)
        for _ in range(200):
            tree = generate_nested_set(rng, sampler, params)
            for node in tree.iter_sets():
                assert 1 <= len(node.atoms) <= params.max_leaves
                assert len(node.children) <= params.max_internal
            assert tree.depth <= params.max_depth

    def test_wide_flatter_than_deep(self) -> None:
        wide = collection_profile(
            list(generate_collection(300, DatasetSpec("wide"), seed=5)))
        deep = collection_profile(
            list(generate_collection(300, DatasetSpec("deep"), seed=5)))
        assert deep["avg_depth"] > 2 * wide["avg_depth"]
        assert wide["avg_leaves"] / wide["avg_internal"] > \
            deep["avg_leaves"] / deep["avg_internal"]

    def test_labels_from_domain(self) -> None:
        spec = DatasetSpec("wide", domain_size=10)
        records = list(generate_collection(50, spec, seed=2))
        atoms: set = set()
        for _key, tree in records:
            atoms |= tree.all_atoms()
        assert atoms <= {f"v{i}" for i in range(10)}


class TestDeterminismAndSpec:
    def test_deterministic(self) -> None:
        spec = DatasetSpec("wide", "zipf", 0.7)
        first = list(generate_collection(40, spec, seed=9))
        second = list(generate_collection(40, spec, seed=9))
        assert first == second

    def test_seed_changes_data(self) -> None:
        spec = DatasetSpec("wide")
        a = dict(generate_collection(40, spec, seed=1))
        b = dict(generate_collection(40, spec, seed=2))
        assert a != b

    def test_unique_sorted_keys(self) -> None:
        records = list(generate_collection(30, DatasetSpec("wide")))
        keys = [key for key, _ in records]
        assert keys == sorted(keys)
        assert len(set(keys)) == 30

    def test_spec_name(self) -> None:
        assert DatasetSpec("wide").name == "uniform-wide"
        assert DatasetSpec("deep", "zipf", 0.9).name == "zipf0.9-deep"

    def test_spec_validation(self) -> None:
        with pytest.raises(ValueError):
            DatasetSpec("tall")
        with pytest.raises(ValueError):
            DatasetSpec("wide", "gaussian")
        with pytest.raises(ValueError):
            DatasetSpec("wide", domain_size=0)


class TestSkewEffect:
    def test_zipf_shrinks_distinct_atoms(self) -> None:
        # With the same number of leaf draws, skewed data reuses labels.
        uniform = collection_profile(list(generate_collection(
            400, DatasetSpec("wide", "uniform", domain_size=50_000))))
        skewed = collection_profile(list(generate_collection(
            400, DatasetSpec("wide", "zipf", 0.9, domain_size=50_000))))
        assert skewed["distinct_atoms"] < uniform["distinct_atoms"]

    def test_profile_empty(self) -> None:
        assert collection_profile([])["records"] == 0
