"""Tests for collection file I/O."""

from __future__ import annotations

import io

import pytest

from repro.core.model import NestedSet
from repro.data.io import (
    CollectionFormatError,
    dump_collection,
    load_collection,
    load_collection_file,
    save_collection_file,
)

N = NestedSet


class TestRoundtrip:
    def test_in_memory(self) -> None:
        records = [("a", N(["x"], [N(["y"])])), ("b", N([1, 2]))]
        buffer = io.StringIO()
        assert dump_collection(records, buffer) == 2
        buffer.seek(0)
        assert list(load_collection(buffer)) == records

    def test_file_based(self, tmp_path, small_corpus) -> None:
        path = str(tmp_path / "c.nsets")
        count = save_collection_file(small_corpus, path)
        assert count == len(small_corpus)
        assert load_collection_file(path) == small_corpus

    def test_comments_and_blanks_skipped(self) -> None:
        text = "# header\n\nk\t{a}\n   \n"
        records = list(load_collection(io.StringIO(text)))
        assert records == [("k", N(["a"]))]


class TestErrors:
    def test_tab_in_key(self) -> None:
        with pytest.raises(CollectionFormatError):
            dump_collection([("bad\tkey", N(["a"]))], io.StringIO())

    def test_missing_tab(self) -> None:
        with pytest.raises(CollectionFormatError):
            list(load_collection(io.StringIO("no-tab-here\n")))

    def test_bad_set_text(self) -> None:
        with pytest.raises(CollectionFormatError) as err:
            list(load_collection(io.StringIO("k\t{unclosed\n")))
        assert "line 1" in str(err.value)
