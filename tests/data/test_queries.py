"""Tests for the benchmark query workload protocol (Section 5.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.model import NestedSet
from repro.core.semantics import hom_contains
from repro.data.queries import (
    add_atom_at_random_node,
    fresh_atom,
    make_benchmark_queries,
    verify_workload,
)

N = NestedSet


class TestProtocol:
    def test_half_positive_half_negative(self, small_corpus) -> None:
        workload = make_benchmark_queries(small_corpus, 40)
        positives = [b for b in workload if b.positive]
        assert len(workload) == 40
        assert len(positives) == 20

    def test_positive_queries_are_records(self, small_corpus) -> None:
        by_key = dict(small_corpus)
        for bench in make_benchmark_queries(small_corpus, 30):
            if bench.positive:
                assert bench.query == by_key[bench.source_key]

    def test_negative_queries_not_contained_anywhere(self,
                                                     small_corpus) -> None:
        for bench in make_benchmark_queries(small_corpus, 30):
            if not bench.positive:
                for _key, tree in small_corpus:
                    assert not hom_contains(tree, bench.query)

    def test_negative_fraction(self, small_corpus) -> None:
        workload = make_benchmark_queries(small_corpus, 20,
                                          negative_fraction=0.25)
        assert sum(1 for b in workload if not b.positive) == 5

    def test_deterministic(self, small_corpus) -> None:
        first = make_benchmark_queries(small_corpus, 20, seed=7)
        second = make_benchmark_queries(small_corpus, 20, seed=7)
        assert first == second
        third = make_benchmark_queries(small_corpus, 20, seed=8)
        assert first != third

    def test_oversampling_with_replacement(self, small_corpus) -> None:
        workload = make_benchmark_queries(small_corpus[:5], 20)
        assert len(workload) == 20

    def test_random_node_distortion(self, small_corpus) -> None:
        workload = make_benchmark_queries(small_corpus, 30,
                                          distort="random")
        verify_workload(workload, small_corpus)

    def test_validation(self, small_corpus) -> None:
        with pytest.raises(ValueError):
            make_benchmark_queries([], 10)
        with pytest.raises(ValueError):
            make_benchmark_queries(small_corpus, 10, negative_fraction=1.5)
        with pytest.raises(ValueError):
            make_benchmark_queries(small_corpus, 10, distort="everywhere")

    def test_verify_workload_catches_tampering(self, small_corpus) -> None:
        workload = make_benchmark_queries(small_corpus, 10)
        verify_workload(workload, small_corpus)  # passes untouched
        bad = [b for b in workload if not b.positive][0]
        tampered = [type(bad)(key=bad.key,
                              query=dict(small_corpus)[bad.source_key],
                              positive=False, source_key=bad.source_key)]
        with pytest.raises(AssertionError):
            verify_workload(tampered, small_corpus)


class TestHelpers:
    def test_fresh_atom_reserved_namespace(self) -> None:
        assert fresh_atom(3) == "__absent_3__"

    def test_add_atom_at_random_node(self) -> None:
        rng = random.Random(1)
        tree = N(["a"], [N(["b"], [N(["c"])])])
        sites = set()
        for _ in range(50):
            grown = add_atom_at_random_node(tree, "__x__", rng)
            assert grown.leaf_count == tree.leaf_count + 1
            for node in grown.iter_sets():
                if "__x__" in node.atoms:
                    sites.add(frozenset(node.atoms - {"__x__"}))
        # over 50 draws, the atom must land on more than one node
        assert len(sites) > 1


class TestBranchingQueries:
    def test_shape(self, small_corpus) -> None:
        from repro.data.queries import make_branching_queries
        queries = make_branching_queries(small_corpus, 20, seed=1,
                                         branch=4)
        assert len(queries) == 20
        for query in queries:
            assert not query.atoms            # atom-free conjunctive root
            assert len(query.children) <= 4   # equal subtrees may collapse

    def test_children_come_from_records(self, small_corpus) -> None:
        from repro.data.queries import make_branching_queries
        pool = {node for _key, tree in small_corpus
                for node in tree.iter_sets()}
        for query in make_branching_queries(small_corpus, 10, seed=2):
            assert set(query.children) <= pool

    def test_deterministic_and_validated(self, small_corpus) -> None:
        from repro.data.queries import make_branching_queries
        import pytest as _pytest
        assert make_branching_queries(small_corpus, 5, seed=3) == \
            make_branching_queries(small_corpus, 5, seed=3)
        with _pytest.raises(ValueError):
            make_branching_queries(small_corpus, 5, branch=0)
        with _pytest.raises(ValueError):
            make_branching_queries([], 5)
