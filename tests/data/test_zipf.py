"""Tests for the Zipfian and uniform samplers."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.data.zipf import UniformSampler, ZipfSampler


class TestZipfSampler:
    def test_range(self) -> None:
        sampler = ZipfSampler(100, 0.7, random.Random(1))
        ranks = sampler.sample_many(1000)
        assert all(0 <= rank < 100 for rank in ranks)

    def test_monotone_frequencies(self) -> None:
        sampler = ZipfSampler(50, 0.9, random.Random(2))
        counts = Counter(sampler.sample_many(30_000))
        # Popularity must drop from the head to the tail of the ranking.
        head = sum(counts[rank] for rank in range(5))
        tail = sum(counts[rank] for rank in range(45, 50))
        assert head > 5 * tail

    def test_skew_increases_with_theta(self) -> None:
        low = ZipfSampler(100, 0.5, random.Random(3))
        high = ZipfSampler(100, 0.9, random.Random(3))
        low_top = Counter(low.sample_many(20_000))[0]
        high_top = Counter(high.sample_many(20_000))[0]
        assert high_top > low_top

    def test_probability_sums_to_one(self) -> None:
        sampler = ZipfSampler(20, 0.7)
        total = sum(sampler.probability(rank) for rank in range(20))
        assert abs(total - 1.0) < 1e-9

    def test_probability_matches_zipf_ratio(self) -> None:
        sampler = ZipfSampler(100, 1.0)
        # With theta=1, p(rank 0) / p(rank 9) == 10.
        ratio = sampler.probability(0) / sampler.probability(9)
        assert abs(ratio - 10.0) < 1e-9

    def test_probability_bounds(self) -> None:
        sampler = ZipfSampler(10, 0.7)
        with pytest.raises(ValueError):
            sampler.probability(10)

    def test_parameter_validation(self) -> None:
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.7)
        with pytest.raises(ValueError):
            ZipfSampler(10, 0.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, 2.5)

    def test_deterministic_with_seeded_rng(self) -> None:
        first = ZipfSampler(100, 0.7, random.Random(42)).sample_many(50)
        second = ZipfSampler(100, 0.7, random.Random(42)).sample_many(50)
        assert first == second


class TestUniformSampler:
    def test_range_and_rough_uniformity(self) -> None:
        sampler = UniformSampler(10, random.Random(4))
        counts = Counter(sampler.sample_many(20_000))
        assert set(counts) == set(range(10))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            UniformSampler(0)
