"""Tests for the simulated Twitter and DBLP generators."""

from __future__ import annotations

from collections import Counter

from repro.data.dblp import article_xml, generate_articles
from repro.data.synthetic import collection_profile
from repro.data.twitter import IDOL_TERMS, generate_tweets


class TestTwitter:
    def test_deterministic(self) -> None:
        assert list(generate_tweets(30)) == list(generate_tweets(30))

    def test_seed_sensitivity(self) -> None:
        assert dict(generate_tweets(30, seed=1)) != \
            dict(generate_tweets(30, seed=2))

    def test_nested_json_shape(self) -> None:
        records = list(generate_tweets(50))
        profile = collection_profile(records)
        # Tweets nest: root -> entities/user -> hashtags/urls/mentions.
        assert profile["avg_depth"] >= 3
        for _key, tree in records:
            markers = {atom for node in tree.iter_sets()
                       for atom in node.atoms
                       if str(atom).startswith("@")}
            assert "@user" in markers
            assert "@entities" in markers

    def test_skewed_users(self) -> None:
        records = list(generate_tweets(400))
        users = Counter()
        for _key, tree in records:
            for node in tree.iter_sets():
                for atom in node.atoms:
                    if str(atom).startswith("screen_name=user"):
                        users[atom] += 1
        counts = sorted(users.values(), reverse=True)
        # The hottest user dwarfs the median one (Zipf skew).
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_idol_terms_dominate(self) -> None:
        records = list(generate_tweets(300))
        atoms = Counter()
        for _key, tree in records:
            for node in tree.iter_sets():
                atoms.update(str(a) for a in node.atoms)
        idol_total = sum(atoms[t] for t in IDOL_TERMS)
        assert idol_total > atoms.get("w200", 0) * 5

    def test_unique_ids(self) -> None:
        records = list(generate_tweets(100))
        ids = set()
        for _key, tree in records:
            for atom in tree.atoms:
                if str(atom).startswith("id_str="):
                    ids.add(atom)
        assert len(ids) == 100


class TestDblp:
    def test_deterministic(self) -> None:
        assert list(generate_articles(30)) == list(generate_articles(30))

    def test_record_shape(self) -> None:
        records = list(generate_articles(50))
        for _key, tree in records:
            assert "#article" in tree.atoms
            child_tags = {str(a) for c in tree.children for a in c.atoms
                          if str(a).startswith("#")}
            assert {"#title", "#year", "#journal", "#pages"} <= child_tags
            assert "#author" in child_tags

    def test_skewed_authors(self) -> None:
        records = list(generate_articles(500))
        authors = Counter()
        for _key, tree in records:
            for child in tree.children:
                for atom in child.atoms:
                    if str(atom).startswith("author=Author"):
                        authors[atom] += 1
        counts = sorted(authors.values(), reverse=True)
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_years_recent_skewed(self) -> None:
        records = list(generate_articles(300))
        years = Counter()
        for _key, tree in records:
            for child in tree.children:
                for atom in child.atoms:
                    if str(atom).startswith("year="):
                        years[int(str(atom)[5:])] += 1
        recent = sum(c for y, c in years.items() if y >= 2005)
        old = sum(c for y, c in years.items() if y < 1990)
        assert recent > old

    def test_article_xml_snippet_parses(self) -> None:
        import xml.etree.ElementTree as ET
        snippet = article_xml()
        element = ET.fromstring(snippet)
        assert element.tag == "article"
        assert element.find("title") is not None
