"""Tests for the workflow-provenance generator."""

from __future__ import annotations

from collections import Counter

from repro.core.engine import NestedSetIndex
from repro.core.naive import reference_query
from repro.core.matchspec import QuerySpec
from repro.data.workflows import (
    TOOLS,
    generate_workflows,
    provenance_query,
)


class TestGenerator:
    def test_deterministic(self) -> None:
        assert list(generate_workflows(20)) == list(generate_workflows(20))

    def test_run_shape(self) -> None:
        for _key, run in generate_workflows(30):
            meta = {str(a).split("=")[0] for a in run.atoms
                    if "=" in str(a)}
            assert {"user", "day"} <= meta
            assert 1 <= len(run.children) <= 4          # stages
            for stage in run.children:
                assert any(str(a).startswith("stage")
                           for a in stage.atoms)
                for invocation in stage.children:
                    tools = {str(a) for a in invocation.atoms
                             if str(a).startswith("tool=")}
                    assert len(tools) == 1

    def test_tool_popularity_skewed(self) -> None:
        counts: Counter = Counter()
        for _key, run in generate_workflows(300):
            for node in run.iter_sets():
                for atom in node.atoms:
                    if str(atom).startswith("tool="):
                        counts[atom] += 1
        ranked = counts.most_common()
        assert ranked[0][1] > 3 * ranked[-1][1]

    def test_depth(self) -> None:
        runs = list(generate_workflows(50))
        assert max(run.depth for _key, run in runs) >= 4


class TestProvenanceQueries:
    def test_query_shape(self) -> None:
        query = provenance_query("align", ref="hg38")
        invocation = next(iter(next(iter(query.children)).children))
        assert "tool=align" in invocation.atoms
        (params,) = invocation.children
        assert params.atoms == {"ref=hg38"}

    def test_queries_match_oracle(self) -> None:
        records = list(generate_workflows(150))
        index = NestedSetIndex.build(records)
        for tool, params in (("align", {"ref": "hg38"}),
                             ("filter", {"dedup": "on"}),
                             ("plot", {})):
            query = provenance_query(tool, **params)
            expect = reference_query(records, query, QuerySpec())
            assert index.query(query) == expect
            assert expect, f"{tool} query should match something"

    def test_all_tools_queryable(self) -> None:
        records = list(generate_workflows(200))
        index = NestedSetIndex.build(records)
        hits = sum(bool(index.query(provenance_query(tool)))
                   for tool, _params in TOOLS)
        assert hits >= len(TOOLS) - 1   # nearly every tool appears
