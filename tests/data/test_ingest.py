"""Tests for the JSONL / XML ingestion loaders."""

from __future__ import annotations

import io

import pytest

from repro.core.model import NestedSet
from repro.core.semantics import hom_contains
from repro.data.ingest import (
    DBLP_RECORD_TAGS,
    IngestError,
    iter_jsonl,
    iter_xml_records,
    load_jsonl_file,
    load_xml_file,
)
from repro.data.json_adapter import json_query

N = NestedSet


class TestJsonl:
    def test_basic_stream(self) -> None:
        text = ('{"id_str": "t1", "lang": "en"}\n'
                '\n'
                '{"id_str": "t2", "user": {"name": "sue"}}\n')
        records = list(iter_jsonl(io.StringIO(text)))
        assert [key for key, _tree in records] == ["t1", "t2"]
        assert "lang=en" in records[0][1].atoms

    def test_key_fallbacks(self) -> None:
        text = ('{"id": 42}\n'
                '{"key": "k7"}\n'
                '{"payload": 1}\n'
                '[1, 2]\n')
        keys = [key for key, _tree in iter_jsonl(io.StringIO(text))]
        assert keys == ["42", "k7", "doc3", "doc4"]

    def test_custom_key_fn(self) -> None:
        text = '{"user": {"name": "sue"}}\n'
        records = list(iter_jsonl(
            io.StringIO(text),
            key_fn=lambda doc: doc.get("user", {}).get("name")))
        assert records[0][0] == "sue"

    def test_invalid_line_raises_with_line_number(self) -> None:
        text = '{"ok": 1}\nnot json\n'
        with pytest.raises(IngestError) as err:
            list(iter_jsonl(io.StringIO(text)))
        assert "line 2" in str(err.value)

    def test_skip_invalid(self) -> None:
        text = '{"ok": 1}\nnot json\n{"ok": 2}\n'
        records = list(iter_jsonl(io.StringIO(text), skip_invalid=True))
        assert len(records) == 2

    def test_file_roundtrip_and_queryability(self, tmp_path) -> None:
        path = tmp_path / "tweets.jsonl"
        path.write_text(
            '{"id_str": "1", "lang": "en", "user": {"verified": true}}\n'
            '{"id_str": "2", "lang": "fr", "user": {"verified": false}}\n')
        records = load_jsonl_file(str(path))
        assert len(records) == 2
        query = json_query({"user": {"verified": True}})
        matching = [key for key, tree in records
                    if hom_contains(tree, query)]
        assert matching == ["1"]


DBLP_SNIPPET = """<dblp>
  <article key="journals/x/A1" mdate="2012-01-01">
    <author>Alice</author><title>On Sets</title><year>2012</year>
  </article>
  <inproceedings key="conf/y/B2">
    <author>Bob</author><title>On Trees</title><year>2011</year>
  </inproceedings>
  <www key="homepages/c"><author>Carol</author></www>
</dblp>"""


class TestXml:
    def test_dblp_style_stream(self) -> None:
        records = list(iter_xml_records(io.StringIO(DBLP_SNIPPET),
                                        {"article", "inproceedings"}))
        keys = [key for key, _tree in records]
        assert keys == ["journals/x/A1", "conf/y/B2"]
        assert "#article" in records[0][1].atoms
        assert any("author=Alice" in child.atoms
                   for child in records[0][1].children)

    def test_all_dblp_tags(self) -> None:
        records = list(iter_xml_records(io.StringIO(DBLP_SNIPPET),
                                        set(DBLP_RECORD_TAGS)))
        assert len(records) == 3

    def test_key_synthesis(self) -> None:
        xml = "<root><rec><v>1</v></rec><rec><v>2</v></rec></root>"
        keys = [key for key, _ in iter_xml_records(io.StringIO(xml),
                                                   {"rec"})]
        assert keys == ["rec0", "rec1"]

    def test_nested_record_tags_skipped(self) -> None:
        xml = ("<root><rec id='outer'><rec id='inner'><v>x</v></rec>"
               "</rec></root>")
        records = list(iter_xml_records(io.StringIO(xml), {"rec"}))
        assert [key for key, _ in records] == ["outer"]

    def test_empty_record_tags(self) -> None:
        with pytest.raises(IngestError):
            list(iter_xml_records(io.StringIO("<a/>"), set()))

    def test_file_loader_and_index(self, tmp_path) -> None:
        from repro.core.engine import NestedSetIndex
        path = tmp_path / "dblp.xml"
        path.write_text(DBLP_SNIPPET)
        records = load_xml_file(str(path), {"article", "inproceedings"})
        index = NestedSetIndex.build(records)
        assert index.query('{{#author, "author=Alice"}}') == \
            ["journals/x/A1"]
