"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones run end to end (the
large generators are exercised by their own module tests, so the slow
examples are compile-checked only to keep the suite quick).
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
#: Small-input examples safe to execute in the test suite.
FAST_EXAMPLES = ("quickstart.py", "data_model_zoo.py")


def test_examples_exist() -> None:
    names = {path.name for path in ALL_EXAMPLES}
    assert {"quickstart.py", "driving_licenses.py",
            "twitter_analytics.py", "dblp_bibliography.py",
            "experiment_tour.py", "live_registry.py",
            "data_model_zoo.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path: pathlib.Path) -> None:
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name: str) -> None:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
