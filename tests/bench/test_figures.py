"""Tests for the terminal figure rendering."""

from __future__ import annotations

import json

import pytest

from repro.bench.figures import (
    bar_chart,
    render_results_dir,
    render_results_file,
    render_rows,
    scatter_plot,
)


def rows_numeric() -> list[dict]:
    return [
        {"series": "topdown", "x": 1000, "millis": 5.0},
        {"series": "topdown", "x": 2000, "millis": 9.0},
        {"series": "bottomup", "x": 1000, "millis": 7.0},
        {"series": "bottomup", "x": 2000, "millis": 13.0},
    ]


def rows_categorical() -> list[dict]:
    return [
        {"series": "topdown", "x": "subset", "millis": 1.2},
        {"series": "topdown", "x": "superset", "millis": 6.6},
        {"series": "bottomup", "x": "subset", "millis": 2.4},
    ]


class TestScatter:
    def test_axes_and_legend(self) -> None:
        plot = scatter_plot(rows_numeric())
        assert "1000" in plot and "2000" in plot
        assert "13" in plot and "5" in plot
        assert "o topdown" in plot
        assert "x bottomup" in plot

    def test_markers_plotted(self) -> None:
        plot = scatter_plot(rows_numeric())
        body = plot.split("+--")[0]
        assert body.count("o") >= 2
        assert body.count("x") >= 2

    def test_log_scale(self) -> None:
        rows = [{"series": "s", "x": 1, "millis": 1.0},
                {"series": "s", "x": 2, "millis": 1000.0}]
        plot = scatter_plot(rows, log_y=True)
        assert "(log)" in plot

    def test_log_rejects_nonpositive(self) -> None:
        rows = [{"series": "s", "x": 1, "millis": 0.0}]
        with pytest.raises(ValueError):
            scatter_plot(rows, log_y=True)

    def test_single_point(self) -> None:
        rows = [{"series": "s", "x": 5, "millis": 2.0}]
        assert "s" in scatter_plot(rows)

    def test_empty(self) -> None:
        assert scatter_plot([]) == "(no data)"


class TestBars:
    def test_grouped_bars(self) -> None:
        chart = bar_chart(rows_categorical())
        assert "subset" in chart and "superset" in chart
        assert "#" in chart
        assert "6.6 ms" in chart

    def test_bar_lengths_scale(self) -> None:
        chart = bar_chart(rows_categorical())
        lines = {line.strip() for line in chart.splitlines() if "#" in line}
        longest = max(lines, key=lambda line: line.count("#"))
        assert "superset" in longest or "6.6" in longest


class TestDispatchAndFiles:
    def test_render_rows_picks_chart(self) -> None:
        assert "|" in render_rows(rows_numeric())          # scatter frame
        assert "#" in render_rows(rows_categorical())      # bars

    def test_render_rows_auto_log(self) -> None:
        rows = [{"series": "s", "x": 1, "millis": 1.0},
                {"series": "s", "x": 2, "millis": 500.0}]
        assert "(log)" in render_rows(rows)  # spread > 50 flips to log

    def test_results_file_and_dir(self, tmp_path) -> None:
        path = tmp_path / "exp1.json"
        path.write_text(json.dumps(rows_numeric()))
        rendered = render_results_file(str(path))
        assert "== exp1 ==" in rendered
        all_rendered = render_results_dir(str(tmp_path))
        assert "== exp1 ==" in all_rendered

    def test_empty_dir(self, tmp_path) -> None:
        assert "no results" in render_results_dir(str(tmp_path))
