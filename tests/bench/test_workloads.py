"""Tests for workload preparation and the timed query unit."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    DATASETS,
    WorkloadCache,
    generate_dataset,
    make_query_runner,
    run_benchmark_queries,
)
from repro.data.queries import BenchmarkQuery
from repro.core.model import NestedSet


class TestGenerateDataset:
    @pytest.mark.parametrize("name", DATASETS)
    def test_every_dataset_generates(self, name: str) -> None:
        records = list(generate_dataset(name, 20, seed=1))
        assert len(records) == 20
        assert all(isinstance(tree, NestedSet) for _k, tree in records)

    def test_theta_forwarded(self) -> None:
        mild = list(generate_dataset("zipf-wide", 100, theta=0.5))
        harsh = list(generate_dataset("zipf-wide", 100, theta=0.9))
        assert mild != harsh

    def test_unknown_dataset(self) -> None:
        with pytest.raises(ValueError):
            list(generate_dataset("mongodb", 10))
        with pytest.raises(ValueError):
            list(generate_dataset("gaussian-wide", 10))


class TestWorkloadCache:
    def test_build_once(self) -> None:
        cache = WorkloadCache()
        first = cache.get("dblp", 50, n_queries=10)
        second = cache.get("dblp", 50, n_queries=10)
        assert first is second
        different = cache.get("dblp", 60, n_queries=10)
        assert different is not first
        cache.clear()

    def test_workload_contents(self) -> None:
        cache = WorkloadCache()
        workload = cache.get("uniform-wide", 40, n_queries=12)
        assert workload.index.n_records == 40
        assert len(workload.queries) == 12
        assert len(workload.records) == 40
        cache.clear()


class TestRunBenchmarkQueries:
    @pytest.fixture
    def workload(self):
        cache = WorkloadCache()
        yield cache.get("zipf-wide", 60, n_queries=16, seed=2)
        cache.clear()

    @pytest.mark.parametrize("algorithm",
                             ["topdown", "bottomup", "topdown-paper"])
    def test_checked_run(self, workload, algorithm: str) -> None:
        total = run_benchmark_queries(workload.index, workload.queries,
                                      algorithm, check=True)
        assert total >= sum(1 for b in workload.queries if b.positive)

    def test_check_catches_misses(self, workload) -> None:
        poisoned = [BenchmarkQuery(key="qx",
                                   query=NestedSet(["__nope__"]),
                                   positive=True, source_key="s000000")]
        with pytest.raises(AssertionError):
            run_benchmark_queries(workload.index, poisoned, "bottomup",
                                  check=True)

    def test_runner_closure(self, workload) -> None:
        runner = make_query_runner(workload.index, workload.queries,
                                   "bottomup")
        assert runner() == runner()  # deterministic result count
