"""Tests for benchmark-run comparison."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    Delta,
    compare_dirs,
    format_report,
    improvements,
    main,
    regressions,
)


def write_results(directory, experiment: str, rows: list[dict]) -> None:
    (directory / f"{experiment}.json").write_text(json.dumps(rows))


@pytest.fixture
def dirs(tmp_path):
    before = tmp_path / "before"
    after = tmp_path / "after"
    before.mkdir()
    after.mkdir()
    write_results(before, "exp", [
        {"series": "td", "x": 1000, "millis": 10.0},
        {"series": "td", "x": 2000, "millis": 20.0},
        {"series": "bu", "x": 1000, "millis": 8.0},
    ])
    write_results(after, "exp", [
        {"series": "td", "x": 1000, "millis": 30.0},   # 3x slower
        {"series": "td", "x": 2000, "millis": 21.0},   # noise
        {"series": "bu", "x": 1000, "millis": 2.0},    # 4x faster
    ])
    return str(before), str(after)


class TestCompare:
    def test_matching(self, dirs) -> None:
        deltas = compare_dirs(*dirs)
        assert len(deltas) == 3
        by_key = {(d.series, d.x): d for d in deltas}
        assert by_key[("td", "1000")].ratio == pytest.approx(3.0)

    def test_regressions_and_improvements(self, dirs) -> None:
        deltas = compare_dirs(*dirs)
        slow = regressions(deltas)
        fast = improvements(deltas)
        assert [(d.series, d.x) for d in slow] == [("td", "1000")]
        assert [(d.series, d.x) for d in fast] == [("bu", "1000")]

    def test_unmatched_rows_dropped(self, tmp_path, dirs) -> None:
        before, after = dirs
        write_results(tmp_path / "after", "newexp",
                      [{"series": "s", "x": 1, "millis": 1.0}])
        assert len(compare_dirs(before, after)) == 3

    def test_report_contents(self, dirs) -> None:
        report = format_report(compare_dirs(*dirs))
        assert "3.00x" in report
        assert "1 slower" in report
        assert "1 faster" in report

    def test_report_no_changes(self, dirs) -> None:
        before, _after = dirs
        report = format_report(compare_dirs(before, before))
        assert "no changes" in report

    def test_empty(self, tmp_path) -> None:
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        assert format_report(compare_dirs(
            str(tmp_path / "a"), str(tmp_path / "b"))) == \
            "(no matching rows between the two runs)"

    def test_main_exit_codes(self, dirs, capsys) -> None:
        before, after = dirs
        assert main([before, after]) == 1          # has regressions
        assert main([before, before]) == 0
        assert "rows compared" in capsys.readouterr().out

    def test_delta_zero_baseline(self) -> None:
        delta = Delta("e", "s", 1, 0.0, 5.0)
        assert delta.ratio == float("inf")
