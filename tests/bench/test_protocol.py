"""Tests for the Section 5.2 measurement protocol."""

from __future__ import annotations

import pytest

from repro.bench.protocol import (
    PAPER_REPEATS,
    SeriesPoint,
    Timing,
    measure,
    trimmed_mean,
)


class TestTrimmedMean:
    def test_drops_min_and_max(self) -> None:
        # 10 samples with outliers at both ends, as in the paper.
        times = [100.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 0.001]
        assert trimmed_mean(times) == pytest.approx(
            (1.0 + 2.0 * 7) / 8)

    def test_small_samples_plain_mean(self) -> None:
        assert trimmed_mean([4.0]) == 4.0
        assert trimmed_mean([2.0, 4.0]) == 3.0

    def test_three_samples(self) -> None:
        assert trimmed_mean([1.0, 5.0, 100.0]) == 5.0

    def test_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            trimmed_mean([])


class TestMeasure:
    def test_runs_requested_times(self) -> None:
        calls = []
        timing = measure(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert len(timing.times) == 4

    def test_default_is_paper_protocol(self) -> None:
        timing = measure(lambda: None)
        assert len(timing.times) == PAPER_REPEATS == 10

    def test_positive_times(self) -> None:
        timing = measure(lambda: sum(range(1000)), repeats=3)
        assert all(t > 0 for t in timing.times)
        assert timing.minimum <= timing.mean <= timing.maximum

    def test_repeats_validated(self) -> None:
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestTimingAndPoints:
    def test_millis(self) -> None:
        timing = Timing((0.001, 0.002, 0.003))
        assert timing.millis == pytest.approx(2.0)

    def test_series_point_row(self) -> None:
        point = SeriesPoint("topdown+cache", 1000,
                            Timing((0.01, 0.02, 0.03)),
                            extra={"queries": 100})
        row = point.as_row()
        assert row["series"] == "topdown+cache"
        assert row["x"] == 1000
        assert row["millis"] == pytest.approx(20.0)
        assert row["queries"] == 100
