"""Tests for benchmark reporting output."""

from __future__ import annotations

import json

import pytest

from repro.bench.protocol import SeriesPoint, Timing
from repro.bench.reporting import (
    format_figure,
    format_table,
    save_points,
    speedup,
)


def point(series: str, x: float, ms: float) -> SeriesPoint:
    return SeriesPoint(series, x, Timing((ms / 1000.0,) * 3))


class TestFormatTable:
    def test_alignment(self) -> None:
        table = format_table(["name", "ms"], [["a", 1.5], ["bbbb", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "1.500" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestFormatFigure:
    def test_series_columns(self) -> None:
        points = [point("td", 1000, 5.0), point("bu", 1000, 7.0),
                  point("td", 2000, 9.0), point("bu", 2000, 13.0)]
        figure = format_figure("Fig 6a", points)
        assert "Fig 6a" in figure
        assert "td" in figure and "bu" in figure
        assert "1K" in figure and "2K" in figure
        assert "13.000" in figure

    def test_missing_cell(self) -> None:
        figure = format_figure("t", [point("td", 1000, 5.0),
                                     point("bu", 2000, 7.0)])
        assert "-" in figure


class TestSavePoints:
    def test_json_written(self, tmp_path) -> None:
        points = [point("td", 1000, 5.0)]
        path = save_points("exp_test", points, directory=str(tmp_path))
        with open(path) as handle:
            rows = json.load(handle)
        assert rows[0]["series"] == "td"
        assert rows[0]["millis"] == pytest.approx(5.0)


class TestSpeedup:
    def test_factor(self) -> None:
        assert speedup(100.0, 10.0) == pytest.approx(10.0)

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)
