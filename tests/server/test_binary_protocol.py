"""Corruption matrix and round trips for the binary wire codec.

Mirrors the packed-block corruption tests in tests/core/test_packed.py:
any byte-level damage to a frame body -- truncation, bad magic, wrong
version, unknown opcode, out-of-range lengths -- must surface as
:class:`ProtocolError`, never as a wrong answer, an unbounded
allocation, or a non-protocol exception.
"""

from __future__ import annotations

import struct

import pytest

from repro.core.model import NestedSet, as_nested_set
from repro.server.protocol import (
    BINARY_MAGIC,
    MAX_FRAME_BYTES,
    MAX_SET_DEPTH,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_nested_set,
    decode_packed_ids,
    decode_request_body,
    decode_response_body,
    encode_nested_set,
    encode_packed_ids,
    encode_request_binary,
    encode_response_for,
    error_response,
    ok_response,
    peek_request_id,
)

REQUESTS = [
    {"op": "ping"},
    {"op": "query", "query": "{a, {b, c}, {b, {d}}}"},
    {"op": "query", "query": "{x}", "timeout_ms": 250.5,
     "options": {"algorithm": "topdown", "semantics": "iso"}},
    {"op": "query_batch", "queries": ["{a}", "{a, {b}}", "{}"]},
    {"op": "insert", "key": "r1", "value": "{café, {münchen, 42}}"},
    {"op": "delete", "key": "r1"},
    {"op": "ingest", "records": [["k1", "{a}"], ["k2", "{b, {c}}"]]},
    {"op": "stats"},
    {"op": "shutdown"},
    {"op": "repl_bootstrap", "replica_id": "replica-7"},
    {"op": "repl_pages", "session": "ab12cd", "start_page": 3,
     "count": 16},
    {"op": "repl_done", "session": "ab12cd"},
    {"op": "repl_fetch", "replica_id": "replica-7", "after_seq": 42,
     "max_groups": 64, "wait_ms": 250},
    {"op": "promote"},
]


def _body_of(request: dict, request_id: int = 7) -> bytes:
    """The frame body (length prefix stripped) of one encoded request."""
    frame = encode_request_binary(request, request_id)
    (length,) = struct.Struct("!I").unpack(frame[:4])
    assert length == len(frame) - 4
    return frame[4:]


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_", REQUESTS,
                             ids=[r["op"] for r in REQUESTS])
    def test_round_trip(self, request_) -> None:
        decoded = decode_request_body(_body_of(request_, request_id=93))
        assert decoded.wire == "binary"
        assert decoded.request_id == 93
        payload = decoded.payload
        assert payload["op"] == request_["op"]
        if "timeout_ms" in request_:
            assert payload["timeout_ms"] == pytest.approx(
                request_["timeout_ms"])
        if "options" in request_:
            assert payload["options"] == request_["options"]
        # Query fields arrive pre-parsed: structural equality with the
        # text the client shipped.
        if request_["op"] == "query":
            assert payload["query"] == as_nested_set(request_["query"])
        if request_["op"] == "query_batch":
            assert payload["queries"] == [as_nested_set(q)
                                          for q in request_["queries"]]

    def test_json_body_still_accepted(self) -> None:
        request = decode_request_body(b'{"op": "ping"}')
        assert request.wire == "json"
        assert request.request_id is None
        assert request.payload == {"op": "ping"}

    def test_unknown_op_rejected_at_encode(self) -> None:
        with pytest.raises(ProtocolError, match="unknown op"):
            encode_request_binary({"op": "evaporate"}, 1)


class TestRequestCorruption:
    """Every way to damage a frame body must raise ProtocolError."""

    @pytest.mark.parametrize("request_", REQUESTS,
                             ids=[r["op"] for r in REQUESTS])
    def test_every_truncation_detected(self, request_) -> None:
        body = _body_of(request_)
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_request_body(body[:cut])

    def test_trailing_garbage_detected(self) -> None:
        body = _body_of({"op": "query", "query": "{a}"})
        with pytest.raises(ProtocolError, match="trailing"):
            decode_request_body(body + b"\x00")

    def test_bad_magic(self) -> None:
        # 0xB2 is neither the binary magic nor a JSON opener, so the
        # frame lands on the JSON path and fails decode there.
        body = bytearray(_body_of({"op": "ping"}))
        body[0] = 0xB2
        with pytest.raises(ProtocolError):
            decode_request_body(bytes(body))

    def test_unsupported_version(self) -> None:
        body = bytearray(_body_of({"op": "ping"}))
        body[1] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_request_body(bytes(body))

    def test_unknown_opcode(self) -> None:
        body = bytearray(_body_of({"op": "ping"}))
        body[2] = len(OPS)
        with pytest.raises(ProtocolError, match="opcode"):
            decode_request_body(bytes(body))

    def test_unknown_flag_bits(self) -> None:
        body = bytearray(_body_of({"op": "ping"}))
        # Flags byte sits right after the request-id varint (id 7 is
        # a single byte).
        body[4] |= 0x80
        with pytest.raises(ProtocolError, match="flag"):
            decode_request_body(bytes(body))

    def test_oversized_count_bounded_by_remaining_bytes(self) -> None:
        # A frame claiming 2**40 batch queries but carrying none must
        # fail fast instead of looping or allocating per the count.
        prefix = _body_of({"op": "query_batch", "queries": []})[:5]
        huge = prefix + b"\x80\x80\x80\x80\x80\x20"  # varint 2**40
        with pytest.raises(ProtocolError):
            decode_request_body(huge)

    def test_depth_bound_enforced(self) -> None:
        deep = as_nested_set("{a}")
        for _ in range(MAX_SET_DEPTH + 1):
            deep = NestedSet(frozenset(), frozenset((deep,)))
        buf = encode_nested_set(deep)
        with pytest.raises(ProtocolError, match="deeper"):
            decode_nested_set(buf)

    def test_atom_index_out_of_range(self) -> None:
        buf = bytearray(encode_nested_set("{a, b}"))
        # Atom table: count=2, [tag, len, 'a'], [tag, len, 'b'] -> the
        # node's delta-varint list starts at offset 7.  First delta 0
        # selects atom 0; patch it to select a table slot that does
        # not exist.
        assert buf[7] == 2  # node atom count
        buf[8] = 5  # first index: 5 > max table index 1
        with pytest.raises(ProtocolError, match="atom index"):
            decode_nested_set(bytes(buf))


class TestFrameLimits:
    def test_oversized_length_prefix_rejected(self) -> None:
        from repro.server.protocol import _check_length

        with pytest.raises(ProtocolError, match="exceeds"):
            _check_length(MAX_FRAME_BYTES + 1)

    def test_oversized_request_rejected_on_encode(self) -> None:
        request = {"op": "insert", "key": "k",
                   "value": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_request_binary(request, 1)


class TestPackedIds:
    @pytest.mark.parametrize("ids", [
        [], [0], [255], [256, 70000], [1, 2, 3, 4_000_000_000],
        [1 << 33], list(range(300)),
    ])
    def test_round_trip(self, ids) -> None:
        buf = encode_packed_ids(ids)
        decoded, end = decode_packed_ids(buf)
        assert decoded == ids
        assert end == len(buf)

    def test_bad_width_rejected(self) -> None:
        buf = bytearray(encode_packed_ids([1, 2, 3]))
        buf[0] = 3  # not one of {1, 2, 4, 8}
        with pytest.raises(ProtocolError, match="width"):
            decode_packed_ids(bytes(buf))

    def test_truncated_array_rejected(self) -> None:
        buf = encode_packed_ids([256, 70000])
        for cut in range(len(buf)):
            with pytest.raises(ProtocolError):
                decode_packed_ids(buf[:cut])


class TestResponses:
    def _request(self, payload: dict, request_id: int = 11) -> Request:
        return Request(payload=payload, wire="binary",
                       request_id=request_id)

    @staticmethod
    def _body(frame: bytes) -> bytes:
        """Strip the length prefix off one encoded response frame."""
        (length,) = struct.Struct("!I").unpack(frame[:4])
        assert length == len(frame) - 4
        return frame[4:]

    def test_query_response_round_trip(self) -> None:
        request = self._request({"op": "query"})
        body = self._body(
            encode_response_for(request, ok_response(["r3", "r17"])))
        request_id, response = decode_response_body(body)
        assert request_id == 11
        assert response == {"ok": True, "result": ["r3", "r17"]}

    def test_batch_response_shares_key_table(self) -> None:
        request = self._request({"op": "query_batch"})
        result = [["k1", "k2"], [], ["k2"], ["k1", "k2", "k3"]]
        body = self._body(encode_response_for(request,
                                              ok_response(result)))
        request_id, response = decode_response_body(body)
        assert request_id == 11
        assert response["result"] == result

    def test_error_response_round_trip(self) -> None:
        request = self._request({"op": "query"}, request_id=404)
        body = self._body(encode_response_for(
            request, error_response("overloaded", "busy")))
        request_id, response = decode_response_body(body)
        assert request_id == 404
        assert response == {"ok": False, "error": "overloaded",
                            "message": "busy"}

    def test_json_wire_response_untagged(self) -> None:
        request = Request(payload={"op": "query"}, wire="json")
        body = self._body(encode_response_for(request,
                                              ok_response(["r1"])))
        request_id, response = decode_response_body(body)
        assert request_id is None
        assert response == {"ok": True, "result": ["r1"]}

    def test_response_truncations_detected(self) -> None:
        request = self._request({"op": "query_batch"})
        body = self._body(encode_response_for(
            request, ok_response([["k1"], ["k1", "k2"]])))
        for cut in range(1, len(body)):
            with pytest.raises(ProtocolError):
                decode_response_body(body[:cut])

    def test_peek_request_id_survives_corrupt_body(self) -> None:
        body = bytearray(_body_of({"op": "query", "query": "{a}"},
                                  request_id=55))
        truncated = bytes(body[:6])
        assert peek_request_id(truncated) == 55
        assert peek_request_id(b"\x00\x01") is None
