"""End-to-end tests of the concurrent query service.

Each test runs a real :class:`~repro.server.ServerThread` on a loopback
port and talks to it through the blocking client -- the same stack the
CLI, the benchmark, and the CI smoke job use.  The headline property is
ISSUE 5's acceptance bar: answers served to concurrent clients are
byte-identical to sequential in-process evaluation, including while
inserts and deletes interleave.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.server import ServerThread, ServiceClient, ServiceError
from repro.server.protocol import encode_frame


def _corpus(size: int = 120):
    return list(generate_dataset("uniform-wide", size, seed=7))


def _query_mix(records, n: int = 24) -> list[str]:
    """Queries with non-trivial answers: subsets of real records."""
    queries = []
    for i, (_, value) in enumerate(records):
        if i >= n:
            break
        atoms = sorted(value.atoms)[:2]
        queries.append("{%s}" % ", ".join(atoms))
    return queries


@pytest.fixture
def memory_index():
    index = NestedSetIndex.build(_corpus())
    yield index
    index.close()


class TestServing:
    def test_query_matches_in_process(self, memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records)
        expected = [memory_index.query(q) for q in queries]
        with ServerThread(memory_index, batch_window_ms=1,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                assert client.ping() == "pong"
                served = [client.query(q) for q in queries]
        assert served == expected

    def test_query_options_forwarded(self, memory_index) -> None:
        records = _corpus()
        query = _query_mix(records, n=1)[0]
        expected = memory_index.query(query, algorithm="topdown",
                                      mode="anywhere")
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                served = client.query(query, algorithm="topdown",
                                      mode="anywhere")
        assert served == expected

    def test_query_batch_round_trip(self, memory_index) -> None:
        queries = _query_mix(_corpus())
        expected = memory_index.query_batch(queries)
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                assert client.query_batch(queries) == expected

    def test_sixteen_concurrent_clients_identical(self,
                                                  memory_index) -> None:
        queries = _query_mix(_corpus())
        expected = [memory_index.query(q) for q in queries]
        errors: list[BaseException] = []

        with ServerThread(memory_index, batch_window_ms=2,
                          close_index_on_drain=False) as handle:
            def worker() -> None:
                try:
                    with ServiceClient(port=handle.port) as client:
                        for _ in range(3):
                            got = [client.query(q) for q in queries]
                            assert got == expected
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker)
                       for _ in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = handle.server.metrics.snapshot()
        assert not errors
        # 16 clients x 3 rounds x len(queries) singles went through the
        # batcher; under concurrency at least some must have coalesced.
        assert stats["batches"] >= 1
        assert stats["batched_queries"] == 16 * 3 * len(queries)

    def test_concurrent_reads_with_interleaved_writes(self) -> None:
        """Served answers under mutation match in-process truth."""
        index = NestedSetIndex.build(_corpus(80))
        probe = "{__probe__}"
        errors: list[BaseException] = []
        stop = threading.Event()

        with ServerThread(index, batch_window_ms=1,
                          close_index_on_drain=False) as handle:
            def reader() -> None:
                try:
                    with ServiceClient(port=handle.port) as client:
                        while not stop.is_set():
                            hits = client.query(probe)
                            # Every answer is a sorted prefix-consistent
                            # snapshot: only ever probe keys, sorted.
                            assert hits == sorted(hits)
                            assert all(h.startswith("probe")
                                       for h in hits)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            readers = [threading.Thread(target=reader) for _ in range(8)]
            for t in readers:
                t.start()
            with ServiceClient(port=handle.port) as writer:
                for i in range(10):
                    writer.insert(f"probe{i:02d}",
                                  "{__probe__, x%d}" % i)
                for i in range(0, 10, 2):
                    assert writer.delete(f"probe{i:02d}") is True
            stop.set()
            for t in readers:
                t.join()
            with ServiceClient(port=handle.port) as client:
                final = client.query(probe)
        assert not errors
        # In-process ground truth after the same mutation sequence.
        assert final == index.query(probe)
        assert final == [f"probe{i:02d}" for i in range(1, 10, 2)]
        index.close()


class TestAdmissionControl:
    def test_overload_rejection(self, memory_index) -> None:
        gate = threading.Event()
        original = memory_index.query

        def slow_query(query, **options):
            gate.wait(timeout=10)
            return original(query, **options)

        memory_index.query = slow_query
        try:
            with ServerThread(memory_index, max_inflight=2,
                              batch_window_ms=0,
                              close_index_on_drain=False) as handle:
                blocked = [ServiceClient(port=handle.port, wire="json")
                           for _ in range(2)]
                try:
                    for client in blocked:
                        # Fire without reading: each holds one
                        # in-flight slot while the gate is shut.
                        client._sock.sendall(encode_frame(
                            {"op": "query", "query": "{a}"}))
                    deadline = time.monotonic() + 5
                    with ServiceClient(port=handle.port) as extra:
                        while time.monotonic() < deadline:
                            try:
                                extra.query("{a}", timeout_ms=300)
                            except ServiceError as exc:
                                if exc.code == "timeout":
                                    continue  # raced the slot holders
                                assert exc.code == "overloaded"
                                break
                            time.sleep(0.01)
                        else:
                            pytest.fail("no overload rejection seen")
                        # Health checks still answered under overload.
                        assert extra.ping() == "pong"
                    gate.set()
                    for client in blocked:
                        client.call({"op": "ping"})  # drain responses
                finally:
                    gate.set()
                    for client in blocked:
                        client.close()
                assert handle.server.metrics.snapshot()[
                    "rejected_overload"] >= 1
        finally:
            memory_index.query = original

    def test_timeout_deadline(self, memory_index) -> None:
        original = memory_index.query

        def slow_query(query, **options):
            time.sleep(0.4)
            return original(query, **options)

        memory_index.query = slow_query
        try:
            with ServerThread(memory_index, batch_window_ms=0,
                              close_index_on_drain=False) as handle:
                with ServiceClient(port=handle.port) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        client.query("{a}", timeout_ms=50)
                    assert excinfo.value.code == "timeout"
                assert handle.server.metrics.snapshot()["timeouts"] == 1
        finally:
            memory_index.query = original

    def test_bad_requests_answered_not_fatal(self, memory_index) -> None:
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.call({"op": "evaporate"})
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServiceError) as excinfo:
                    client.call({"op": "query", "query": "{unclosed"})
                assert excinfo.value.code == "internal"
                # The connection survived both errors.
                assert client.ping() == "pong"


class TestDrain:
    def test_drain_checkpoints_wal(self, tmp_path) -> None:
        path = str(tmp_path / "served.idx")
        NestedSetIndex.build(_corpus(40), storage="diskhash",
                             path=path).close()
        index = NestedSetIndex.open("diskhash", path)
        with ServerThread(index) as handle:  # closes index on drain
            with ServiceClient(port=handle.port) as client:
                client.insert("fresh", "{fresh_atom, {nested}}")
                assert client.query("{fresh_atom}") == ["fresh"]
                client.shutdown()
        # Drained server closed the index: reopening must replay
        # nothing and still see the insert.
        with NestedSetIndex.open("diskhash", path) as reopened:
            wal = reopened.stats()["wal"]
            assert wal["pending_groups"] == 0
            assert wal["recovered_on_open"] == 0
            assert reopened.query("{fresh_atom}") == ["fresh"]

    def test_requests_after_shutdown_rejected(self, memory_index) -> None:
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            port = handle.port
            with ServiceClient(port=port) as client:
                client.shutdown()
            # The listener stops during drain; either the connection is
            # refused or an early-enough frame gets `shutting_down`.
            try:
                with ServiceClient(port=port,
                                   connect_timeout=0.2) as late:
                    late.query("{a}")
            except (ServiceError, OSError) as exc:
                if isinstance(exc, ServiceError):
                    assert exc.code == "shutting_down"


class TestIngest:
    def test_ingest_round_trip_and_stats(self, memory_index) -> None:
        """The ``ingest`` op: accepted asynchronously, durable shortly
        after, and accounted for in the ``stats`` surface."""
        records = [(f"ing{i:02d}", "{__ingested__, t%d}" % i)
                   for i in range(40)]
        expected = sorted(key for key, _value in records)
        with ServerThread(memory_index, batch_window_ms=1,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                reply = client.ingest(records)
                assert reply["accepted"] == len(records)
                # Ingest is asynchronous (that is its point): queries
                # keep being served while the batcher commits groups.
                deadline = time.time() + 30
                while time.time() < deadline:
                    if client.query("{__ingested__}") == expected:
                        break
                    time.sleep(0.02)
                assert client.query("{__ingested__}") == expected

                server = client.stats()["server"]
                assert server["ingest_records"] == len(records)
                assert 1 <= server["ingest_groups_committed"] \
                    <= len(records)
                assert server["ingest_errors"] == 0
                # The MVCC surface: a committed version exists, and no
                # reader pin is stuck (queries pin transiently).
                assert server["snapshot_version"] is not None
                assert server["snapshot_version"] >= 1
                assert "oldest_pinned_version" in server

    def test_ingest_drains_before_shutdown(self, memory_index) -> None:
        """Drain closes the ingestor first: accepted records are durable
        by the time shutdown acknowledges."""
        records = [(f"drain{i}", "{__drained__}") for i in range(24)]
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                client.ingest(records)
                client.shutdown()
        assert memory_index.query("{__drained__}") == \
            sorted(key for key, _value in records)


class TestBinaryWire:
    """The binary wire serves answers byte-identical to JSON's."""

    def test_binary_matches_json_and_in_process(self,
                                                memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records)
        expected = [memory_index.query(q) for q in queries]
        with ServerThread(memory_index, batch_window_ms=1,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as binary, \
                    ServiceClient(port=handle.port, wire="json") as json_:
                assert binary.wire == "binary"
                served_binary = [binary.query(q) for q in queries]
                served_json = [json_.query(q) for q in queries]
        assert served_binary == expected
        assert served_json == expected

    def test_mixed_wires_on_one_connection(self, memory_index) -> None:
        # A binary client falls back to JSON frames for requests the
        # codec cannot express; the server answers both on the same
        # connection without losing framing.
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.call({"op": "evaporate"})
                assert excinfo.value.code == "bad_request"
                assert client.ping() == "pong"

    def test_batch_over_binary(self, memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records, n=12)
        expected = [memory_index.query(q) for q in queries]
        with ServerThread(memory_index, batch_window_ms=0,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                assert client.query_batch(queries) == expected


class TestPipelining:
    def test_submit_drain_matches_in_process(self, memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records)
        expected = [memory_index.query(q) for q in queries]
        with ServerThread(memory_index, batch_window_ms=2,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                ids = [client.submit({"op": "query", "query": q})
                       for q in queries]
                assert client.outstanding == len(queries)
                results = client.drain()
                assert client.outstanding == 0
        assert [results[i] for i in ids] == expected

    def test_query_pipelined_matches_in_process(self,
                                                memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records) * 3  # > default window
        expected = [memory_index.query(q) for q in queries]
        with ServerThread(memory_index, batch_window_ms=2,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                assert client.query_pipelined(queries,
                                              window=8) == expected
                # The burst coalesced into fewer engine calls.
                server = client.stats()["server"]
                assert server["batches"] >= 1

    def test_responses_arrive_out_of_order(self, memory_index) -> None:
        """A slow query must not head-of-line-block a fast one."""
        gate = threading.Event()
        original = memory_index.query

        def gated_query(query, **options):
            atoms = getattr(query, "atoms", frozenset())
            if "__slow__" in atoms:
                gate.wait(timeout=10)
            return original(query, **options)

        memory_index.query = gated_query
        try:
            with ServerThread(memory_index, batch_window_ms=0,
                              close_index_on_drain=False) as handle:
                with ServiceClient(port=handle.port) as client:
                    slow = client.submit({"op": "query",
                                          "query": "{__slow__}"})
                    fast = client.submit({"op": "query",
                                          "query": "{a}"})
                    first_id, _result = client.next_response()
                    assert first_id == fast
                    gate.set()
                    second_id, _result = client.next_response()
                    assert second_id == slow
        finally:
            gate.set()
            memory_index.query = original

    def test_pipelining_requires_binary_wire(self, memory_index) -> None:
        from repro.server.protocol import ProtocolError
        with ServerThread(memory_index,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port, wire="json") as client:
                with pytest.raises(ProtocolError, match="binary"):
                    client.submit({"op": "ping"})

    def test_drain_surfaces_first_error_after_reading_all(
            self, memory_index) -> None:
        with ServerThread(memory_index, batch_window_ms=0,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                ok_id = client.submit({"op": "query", "query": "{a}"})
                client.submit({"op": "query", "query": "{b}",
                               "options": {"algorithm": "no-such"}})
                with pytest.raises(ServiceError):
                    client.drain()
                # The pipeline is empty and the connection usable.
                assert client.outstanding == 0
                assert client.ping() == "pong"
                assert ok_id >= 1


class TestAdaptiveWindow:
    def test_single_inflight_skips_the_window(self, memory_index) -> None:
        """Regression: with one request in flight the micro-batcher
        must dispatch immediately, not sleep out the window."""
        with ServerThread(memory_index, batch_window_ms=250,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                client.ping()  # connection warm-up outside the clock
                started = time.monotonic()
                for _ in range(3):
                    client.query("{a}")
                elapsed = time.monotonic() - started
        # Three sequential queries under a 250 ms window would take
        # >= 750 ms without the floor; the bound leaves slack for CI.
        assert elapsed < 0.5, f"window tax not bypassed: {elapsed:.3f}s"

    def test_pipelined_burst_still_coalesces(self, memory_index) -> None:
        records = _corpus()
        queries = _query_mix(records) * 2
        with ServerThread(memory_index, batch_window_ms=5,
                          close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                client.query_pipelined(queries, window=16)
                server = client.stats()["server"]
        assert server["batches"] >= 1
        assert server["coalesce_ratio"] > 1.0
