"""HTTP/JSON gateway: stdlib clients against the same query server.

The gateway is a translator onto the server's dispatch path, so the
properties under test are (a) answers byte-identical to the protocol
wire and the in-process engine, (b) protocol error codes mapped onto
HTTP statuses, and (c) HTTP framing robustness (keep-alive, bad
bodies, bad routes) without disturbing the TCP protocol listener.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.server import ServerThread, ServiceClient


def _corpus(size: int = 80):
    return list(generate_dataset("uniform-wide", size, seed=7))


@pytest.fixture
def served():
    index = NestedSetIndex.build(_corpus())
    with ServerThread(index, batch_window_ms=1, http_port=0,
                      close_index_on_drain=False) as handle:
        conn = http.client.HTTPConnection("127.0.0.1",
                                          handle.http_port, timeout=10)
        try:
            yield index, handle, conn
        finally:
            conn.close()
    index.close()


def _request(conn, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    return response.status, json.loads(response.read())


class TestGateway:
    def test_ping_and_stats(self, served) -> None:
        _index, _handle, conn = served
        status, body = _request(conn, "GET", "/ping")
        assert (status, body["ok"], body["result"]) == (200, True, "pong")
        status, body = _request(conn, "GET", "/stats")
        assert status == 200 and body["ok"]
        assert "server" in body["result"]
        assert "stages_ms" in body["result"]["server"]

    def test_query_matches_in_process_and_protocol(self, served) -> None:
        index, handle, conn = served
        records = _corpus()
        query = "{%s}" % sorted(records[0][1].atoms)[0]
        expected = index.query(query)
        status, body = _request(conn, "POST", "/query",
                                {"query": query})
        assert status == 200
        assert body["result"] == expected
        with ServiceClient(port=handle.port) as client:
            assert client.query(query) == expected

    def test_keep_alive_reuses_the_connection(self, served) -> None:
        _index, _handle, conn = served
        for _ in range(5):
            status, body = _request(conn, "POST", "/",
                                    {"op": "ping"})
            assert (status, body["result"]) == (200, "pong")

    def test_op_implied_by_path(self, served) -> None:
        index, _handle, conn = served
        queries = ["{a}", "{b}"]
        status, body = _request(conn, "POST", "/query_batch",
                                {"queries": queries})
        assert status == 200
        assert body["result"] == index.query_batch(queries)

    def test_bad_json_body_is_400(self, served) -> None:
        _index, _handle, conn = served
        conn.request("POST", "/query", body="{not json")
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert body["error"] == "bad_request"

    def test_unknown_op_is_404(self, served) -> None:
        _index, _handle, conn = served
        status, body = _request(conn, "POST", "/evaporate", {})
        assert status == 404
        assert body["error"] == "bad_request"

    def test_body_op_contradicting_path_is_400(self, served) -> None:
        _index, _handle, conn = served
        status, body = _request(conn, "POST", "/query",
                                {"op": "ping"})
        assert status == 400
        assert body["error"] == "bad_request"

    def test_method_not_allowed_is_405(self, served) -> None:
        _index, _handle, conn = served
        status, body = _request(conn, "PUT", "/query", {"query": "{a}"})
        assert status == 405

    def test_get_unknown_route_is_404(self, served) -> None:
        _index, _handle, conn = served
        status, _body = _request(conn, "GET", "/query")
        assert status == 404

    def test_invalid_request_surfaces_protocol_error(self, served) -> None:
        _index, _handle, conn = served
        status, body = _request(conn, "POST", "/query", {})
        assert status == 400
        assert body["error"] == "bad_request"

    def test_writes_via_gateway_visible_everywhere(self, served) -> None:
        index, handle, conn = served
        status, body = _request(
            conn, "POST", "/insert",
            {"key": "gw1", "value": "{__gateway__, {z}}"})
        assert status == 200
        status, body = _request(conn, "POST", "/query",
                                {"query": "{__gateway__}"})
        assert body["result"] == ["gw1"]
        with ServiceClient(port=handle.port) as client:
            assert client.query("{__gateway__}") == ["gw1"]
        assert index.query("{__gateway__}") == ["gw1"]

    def test_gateway_disabled_by_default(self) -> None:
        index = NestedSetIndex.build(_corpus(10))
        with ServerThread(index, close_index_on_drain=False) as handle:
            assert handle.http_port is None
        index.close()
