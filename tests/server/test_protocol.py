"""Frame codec and request validation of the query-service protocol."""

from __future__ import annotations

import struct

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)


class TestFrameCodec:
    def test_round_trip(self) -> None:
        payload = {"op": "query", "query": "{a, {b, c}}",
                   "options": {"algorithm": "topdown"}, "timeout_ms": 250}
        frame = encode_frame(payload)
        (length,) = struct.Struct("!I").unpack(frame[:4])
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == payload

    def test_non_ascii_survives(self) -> None:
        payload = {"op": "query", "query": "{café, {münchen}}"}
        assert decode_frame(encode_frame(payload)[4:]) == payload

    def test_oversize_payload_rejected_on_encode(self) -> None:
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_undecodable_payload_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(b"\xff\xfe not json")

    def test_responses_shape(self) -> None:
        assert ok_response([1, 2]) == {"ok": True, "result": [1, 2]}
        err = error_response("overloaded", "busy")
        assert err == {"ok": False, "error": "overloaded",
                       "message": "busy"}
        with pytest.raises(ValueError):
            error_response("not-a-code")


class TestValidateRequest:
    def test_valid_ops_pass(self) -> None:
        for request in (
            {"op": "ping"},
            {"op": "query", "query": "{a}"},
            {"op": "query", "query": "{a}",
             "options": {"algorithm": "topdown", "semantics": "iso"},
             "timeout_ms": 100},
            {"op": "query_batch", "queries": ["{a}", "{b}"]},
            {"op": "insert", "key": "r1", "value": "{a}"},
            {"op": "delete", "key": "r1"},
            {"op": "stats"},
            {"op": "shutdown"},
        ):
            assert validate_request(request) is request

    @pytest.mark.parametrize("request_", [
        "not an object",
        {"op": "evaporate"},
        {"op": "query"},                              # missing query
        {"op": "query", "query": 7},                  # wrong type
        {"op": "query_batch", "queries": "{a}"},      # not a list
        {"op": "query_batch", "queries": ["{a}", 3]},
        {"op": "insert", "key": "r1"},                # missing value
        {"op": "delete"},                             # missing key
        {"op": "query", "query": "{a}", "options": ["algorithm"]},
        {"op": "query", "query": "{a}",
         "options": {"volume": 11}},                  # unknown option
        {"op": "query", "query": "{a}", "timeout_ms": 0},
        {"op": "query", "query": "{a}", "timeout_ms": -5},
        {"op": "query", "query": "{a}", "timeout_ms": True},
        {"op": "query", "query": "{a}", "timeout_ms": "fast"},
    ])
    def test_invalid_requests_rejected(self, request_) -> None:
        with pytest.raises(ProtocolError):
            validate_request(request_)
