"""Replication over the wire: repl_* ops, roles, routing, and retry.

Runs a real primary/replica pair of :class:`ServerThread` instances on
loopback and drives the same stack the ``serve --replicate-from`` CLI
wires up: bootstrap over ``repl_bootstrap``/``repl_pages``/``repl_done``,
background tailing over ``repl_fetch``, the replica's ``read_only``
write fence, role/term/lag in ``stats`` and on the HTTP gateway, and
``promote`` flipping the role live.  Also covers the client-side
satellites: binary codec round trips for the five new ops and
:class:`ServiceClient`'s opt-in transparent reconnect.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.replication import (ReplicaSetClient, ReplicaTailer,
                               ReplicationLog, ReplicationManager,
                               bootstrap_from_primary)
from repro.replication.shipper import base_store_of
from repro.server import ServerThread, ServiceClient, ServiceError
from repro.server.protocol import (ProtocolError, decode_request_body,
                                   encode_request_binary, validate_request)


def _corpus(size: int = 40):
    return list(generate_dataset("uniform-wide", size, seed=7))


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_caught_up(pair, timeout: float = 15.0) -> dict:
    """Wait until the replica applied everything the primary committed.

    ``lag_groups == 0`` alone is not enough: it reflects the primary's
    log end *as of the tailer's last fetch*, which may predate commits
    made just now.  Compare against the primary's live log instead.
    """
    target = base_store_of(pair.primary).pager.wal.last_seq
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lag = pair.tailer.lag()
        if lag["status"] == "tailing" and lag["applied_seq"] >= target:
            return lag
        time.sleep(0.02)
    raise AssertionError(f"replica never caught up: {pair.tailer.lag()}")


# ---------------------------------------------------------------------------
# Binary codec for the replication ops
# ---------------------------------------------------------------------------


class TestReplicationProtocol:
    def _roundtrip(self, request: dict) -> dict:
        frame = encode_request_binary(request, 11)
        return decode_request_body(frame[4:]).payload

    def test_payloads_survive_binary_roundtrip(self) -> None:
        for request in (
                {"op": "repl_bootstrap", "replica_id": "r-1"},
                {"op": "repl_pages", "session": "tok", "start_page": 0,
                 "count": 512},
                {"op": "repl_done", "session": "tok"},
                {"op": "repl_fetch", "replica_id": "r-1", "after_seq": 9,
                 "max_groups": 32, "wait_ms": 100},
                {"op": "promote"},
        ):
            assert self._roundtrip(dict(request)) == request

    def test_fetch_defaults_applied_on_encode(self) -> None:
        payload = self._roundtrip({"op": "repl_fetch",
                                   "replica_id": "r", "after_seq": 0})
        assert payload["max_groups"] == 256
        assert payload["wait_ms"] == 0

    def test_validate_rejects_bad_fields(self) -> None:
        for bad in (
                {"op": "repl_bootstrap"},
                {"op": "repl_pages", "session": "t", "start_page": -1,
                 "count": 1},
                {"op": "repl_pages", "session": "t", "start_page": 0,
                 "count": True},
                {"op": "repl_done"},
                {"op": "repl_fetch", "replica_id": "r",
                 "after_seq": "nope"},
        ):
            with pytest.raises(ProtocolError):
                validate_request(bad)

    def test_validate_accepts_fetch_defaults(self) -> None:
        validate_request({"op": "repl_fetch", "replica_id": "r",
                          "after_seq": 0})
        validate_request({"op": "promote"})


# ---------------------------------------------------------------------------
# Primary/replica pair end to end
# ---------------------------------------------------------------------------


class _Pair:
    """A served primary + bootstrapped, tailing, served replica."""

    def __init__(self, tmp_path) -> None:
        self.primary_path = str(tmp_path / "primary.db")
        self.replica_path = str(tmp_path / "replica.db")
        NestedSetIndex.build(_corpus(), storage="diskhash",
                             path=self.primary_path).close()
        self.primary = NestedSetIndex.open(
            "diskhash", self.primary_path, wal_factory=ReplicationLog)
        self.primary_handle = ServerThread(
            self.primary, close_index_on_drain=False, http_port=0,
            replication=ReplicationManager.as_primary(self.primary),
            batch_window_ms=1).start()
        self.primary_client = ServiceClient(port=self.primary_handle.port)

        boot = bootstrap_from_primary(self.primary_client.call,
                                      self.replica_path, "r1")
        self.replica = NestedSetIndex.open(
            "diskhash", self.replica_path, wal_factory=ReplicationLog)
        base_store_of(self.replica).pager.adopt_version(boot["version"])
        self.tail_client = ServiceClient(port=self.primary_handle.port)
        self.tailer = ReplicaTailer(
            self.replica, self.tail_client.call, replica_id="r1",
            primary_address=f"127.0.0.1:{self.primary_handle.port}",
            poll_wait_ms=50).start()
        self.replica_handle = ServerThread(
            self.replica, close_index_on_drain=False, http_port=0,
            replication=ReplicationManager.as_replica(self.replica,
                                                      self.tailer),
            batch_window_ms=1).start()
        self.replica_client = ServiceClient(port=self.replica_handle.port)

    def close(self) -> None:
        self.tailer.stop()
        for client in (self.replica_client, self.primary_client,
                       self.tail_client):
            client.close()
        self.replica_handle.stop()
        self.primary_handle.stop()
        self.replica.close()
        self.primary.close()


@pytest.fixture
def pair(tmp_path):
    stack = _Pair(tmp_path)
    try:
        yield stack
    finally:
        stack.close()


def _http(port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestReplicatedService:
    def test_replica_tails_and_answers_identically(self, pair) -> None:
        for i in range(12):
            pair.primary_client.insert(f"new{i}",
                                       "{fresh, {tier, t%d}}" % (i % 3))
        pair.primary_client.delete(_corpus()[0][0])
        _wait_caught_up(pair)

        queries = ["{fresh}", "{fresh, {tier}}", "{fresh, {tier, t1}}"]
        for query in queries:
            expected = pair.primary_client.query(query)
            assert pair.replica_client.query(query) == expected
            assert sorted(expected), f"empty probe {query!r}"

        pstats = pair.primary_client.stats()["server"]
        assert pstats["role"] == "primary"
        assert "r1" in pstats["replication"]["shipping"]["followers"]
        rstats = pair.replica_client.stats()["server"]
        assert rstats["role"] == "replica"
        assert rstats["term"] == pstats["term"]
        assert rstats["replica_lag"]["lag_groups"] == 0
        assert rstats["replication"]["primary"].endswith(
            str(pair.primary_handle.port))
        # The metrics scoreboard absorbed the same view.
        snap = pair.replica_handle.server.metrics.snapshot()
        assert snap["replication"]["role"] == "replica"

    def test_gateway_reports_role_term_lag(self, pair) -> None:
        _wait_caught_up(pair)
        status, body = _http(pair.primary_handle.http_port, "GET", "/ping")
        assert status == 200
        assert (body["role"], body["term"]) == ("primary", 0)
        assert body["replica_lag"] is None
        status, body = _http(pair.replica_handle.http_port, "GET", "/ping")
        assert status == 200
        assert body["role"] == "replica"
        assert body["replica_lag"]["lag_groups"] == 0
        status, body = _http(pair.replica_handle.http_port, "GET",
                             "/stats")
        assert status == 200 and body["role"] == "replica"

    def test_replica_rejects_writes_naming_primary(self, pair) -> None:
        for request in (
                {"op": "insert", "key": "x", "value": "{a}"},
                {"op": "delete", "key": "x"},
                {"op": "ingest", "records": [["x", "{a}"]]},
        ):
            with pytest.raises(ServiceError) as excinfo:
                pair.replica_client.call(request)
            assert excinfo.value.code == "read_only"
            assert str(pair.primary_handle.port) in excinfo.value.message
        status, body = _http(pair.replica_handle.http_port, "POST",
                             "/insert", {"key": "x", "value": "{a}"})
        assert status == 403
        assert body["error"] == "read_only"

    def test_promote_flips_role_and_accepts_writes(self, pair) -> None:
        pair.primary_client.insert("pre", "{promo, {a}}")
        _wait_caught_up(pair)
        result = pair.replica_client.call({"op": "promote"})
        assert result["promoted"] is True
        assert (result["role"], result["term"]) == ("primary", 1)
        # Promotion is idempotent: a second call reports, not re-fences.
        again = pair.replica_client.call({"op": "promote"})
        assert again["promoted"] is False and again["term"] == 1
        pair.replica_client.insert("post", "{promo, {b}}")
        assert pair.replica_client.query("{promo}") == ["post", "pre"]
        stats = pair.replica_client.stats()["server"]
        assert (stats["role"], stats["term"]) == ("primary", 1)

    def test_replica_set_client_routes_and_fails_over(self, pair) -> None:
        pair.primary_client.insert("routed", "{routed, {a}}")
        _wait_caught_up(pair)
        endpoints = [f"127.0.0.1:{pair.primary_handle.port}",
                     f"127.0.0.1:{pair.replica_handle.port}"]
        with ReplicaSetClient(endpoints, max_staleness_s=30.0) as client:
            assert client.query("{routed}") == ["routed"]
            roles = {e["role"] for e in client.endpoints()}
            assert roles == {"primary", "replica"}
            # Writes land on the primary even when the replica is listed
            # first in the read rotation.
            client.insert("routed2", "{routed, {b}}")
            _wait_caught_up(pair)
            assert client.query("{routed}") == ["routed", "routed2"]
            # Failover: the primary dies, an operator promotes the
            # replica, and the next write discovers the new primary.
            pair.primary_handle.stop()
            promoted = client.promote(endpoints[1])
            assert promoted["role"] == "primary"
            client.insert("routed3", "{routed, {c}}")
            assert sorted(pair.replica.query("{routed}")) \
                == ["routed", "routed2", "routed3"]

    def test_unreplicated_server_rejects_repl_ops(self, tmp_path) -> None:
        index = NestedSetIndex.build(_corpus())
        with ServerThread(index, close_index_on_drain=False) as handle:
            with ServiceClient(port=handle.port) as client:
                with pytest.raises(ServiceError, match="not enabled"):
                    client.call({"op": "repl_bootstrap",
                                 "replica_id": "r"})
                stats = client.stats()["server"]
                assert "role" not in stats
        index.close()


# ---------------------------------------------------------------------------
# ServiceClient transparent reconnect (opt-in)
# ---------------------------------------------------------------------------


class TestClientRetry:
    def test_no_retry_by_default(self) -> None:
        with pytest.raises(OSError):
            ServiceClient(port=_free_port())

    def test_connect_retries_until_listener_appears(self) -> None:
        port = _free_port()
        index = NestedSetIndex.build(_corpus(12))
        holder: dict[str, ServerThread] = {}

        def late_start() -> None:
            time.sleep(0.4)
            holder["handle"] = ServerThread(
                index, port=port, close_index_on_drain=False).start()

        thread = threading.Thread(target=late_start)
        thread.start()
        try:
            client = ServiceClient(port=port, retries=8,
                                   retry_backoff_s=0.1)
            assert client.ping() == "pong"
            client.close()
        finally:
            thread.join()
            holder["handle"].stop()
            index.close()

    def test_call_survives_server_restart(self) -> None:
        port = _free_port()
        index = NestedSetIndex.build(_corpus(12))
        handle = ServerThread(index, port=port,
                              close_index_on_drain=False).start()
        client = ServiceClient(port=port, retries=8, retry_backoff_s=0.05)
        try:
            assert client.ping() == "pong"
            handle.stop()
            handle = ServerThread(index, port=port,
                                  close_index_on_drain=False).start()
            assert client.ping() == "pong", "reconnect did not happen"
            assert client.query_batch(["{a}"]) is not None
        finally:
            client.close()
            handle.stop()
            index.close()
