"""ServerMetrics unit tests: quantile edge cases and counter surface.

The quantile regression these pin: nearest-rank indexing must clamp, so
the p99 of a 1-element reservoir is that element -- not an IndexError
(``ceil(0.99 * 1)`` rounds to 1, and q = 1.0 or float fuzz can land the
rank on ``n`` exactly).
"""

from __future__ import annotations

import pytest

from repro.server.metrics import ServerMetrics, _quantile


class TestQuantile:
    def test_empty_reservoir(self) -> None:
        assert _quantile([], 0.99) == 0.0

    def test_single_sample_p99(self) -> None:
        # Regression: rank ceil(0.99 * 1) - 1 == 0 must index, not raise.
        assert _quantile([7.0], 0.99) == 7.0

    def test_single_sample_p50(self) -> None:
        assert _quantile([7.0], 0.50) == 7.0

    def test_q_one_is_clamped_to_max(self) -> None:
        assert _quantile([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_nearest_rank_on_hundred(self) -> None:
        ordered = [float(i) for i in range(1, 101)]
        assert _quantile(ordered, 0.50) == 50.0
        assert _quantile(ordered, 0.99) == 99.0
        assert _quantile(ordered, 0.01) == 1.0


class TestServerMetrics:
    def test_one_sample_snapshot_does_not_raise(self) -> None:
        metrics = ServerMetrics()
        metrics.record_latency(0.005)
        snap = metrics.snapshot()
        assert snap["latency_ms"]["samples"] == 1
        assert snap["latency_ms"]["p50"] == 5.0
        assert snap["latency_ms"]["p99"] == 5.0
        assert snap["latency_ms"]["max"] == 5.0

    def test_empty_snapshot_is_all_zero(self) -> None:
        snap = ServerMetrics().snapshot()
        assert snap["latency_ms"] == {"samples": 0, "p50": 0.0,
                                      "p99": 0.0, "max": 0.0}

    def test_ingest_counters_surface(self) -> None:
        metrics = ServerMetrics()
        metrics.set_ingest_counters(160, 10, 2)
        snap = metrics.snapshot()
        assert snap["ingest_records"] == 160
        assert snap["ingest_groups_committed"] == 10
        assert snap["ingest_errors"] == 2

    def test_coalesce_ratio(self) -> None:
        metrics = ServerMetrics()
        assert metrics.coalesce_ratio == 0.0
        metrics.record_batch(4)
        metrics.record_batch(2)
        assert metrics.coalesce_ratio == 3.0

    def test_stage_reservoirs_surface(self) -> None:
        from repro.server.metrics import STAGES

        metrics = ServerMetrics()
        snap = metrics.snapshot()
        assert set(snap["stages_ms"]) == set(STAGES)
        for stage in STAGES:
            assert snap["stages_ms"][stage] == {"samples": 0,
                                                "p50": 0.0, "p99": 0.0}
        metrics.record_stage("decode", 0.0002)
        metrics.record_stage("decode", 0.0004)
        metrics.record_stage("execute", 0.010)
        snap = metrics.snapshot()
        assert snap["stages_ms"]["decode"]["samples"] == 2
        assert snap["stages_ms"]["decode"]["p50"] == 0.2
        assert snap["stages_ms"]["decode"]["p99"] == 0.4
        assert snap["stages_ms"]["execute"]["p50"] == 10.0
        assert snap["stages_ms"]["queue"]["samples"] == 0

    def test_unknown_stage_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown stage"):
            ServerMetrics().record_stage("teleport", 0.001)
