"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.model import (
    EXAMPLE_QUERY,
    EXAMPLE_SUE,
    EXAMPLE_TIM,
    NestedSet,
)


@pytest.fixture
def sue() -> NestedSet:
    """Sue's record from Table 1 of the paper."""
    return NestedSet.parse(EXAMPLE_SUE)


@pytest.fixture
def tim() -> NestedSet:
    """Tim's record from Table 1 of the paper."""
    return NestedSet.parse(EXAMPLE_TIM)


@pytest.fixture
def paper_query() -> NestedSet:
    """The running-example query of Section 1 / Figure 3."""
    return NestedSet.parse(EXAMPLE_QUERY)


@pytest.fixture
def paper_records(sue: NestedSet, tim: NestedSet
                  ) -> list[tuple[str, NestedSet]]:
    """The two-record collection S of Table 1 / Figure 1."""
    return [("sue", sue), ("tim", tim)]


def random_tree(rng: random.Random, atoms: list[str], *,
                max_depth: int = 3, max_atoms: int = 3,
                max_children: int = 2, allow_empty: bool = True,
                depth: int = 0) -> NestedSet:
    """Small random nested set for randomized cross-validation."""
    low = 0 if (allow_empty and depth) else 1
    node_atoms = rng.sample(atoms, rng.randint(low, max_atoms))
    children = []
    if depth < max_depth:
        for _ in range(rng.randint(0, max_children)):
            children.append(random_tree(
                rng, atoms, max_depth=max_depth, max_atoms=max_atoms,
                max_children=max_children, allow_empty=allow_empty,
                depth=depth + 1))
    return NestedSet(node_atoms, children)


@pytest.fixture
def small_corpus() -> list[tuple[str, NestedSet]]:
    """Sixty small random records over a 12-atom alphabet, seeded."""
    rng = random.Random(20130322)  # EDBT 2013 conference date
    atoms = [f"a{i}" for i in range(12)]
    return [(f"r{i:02d}", random_tree(rng, atoms)) for i in range(60)]
