"""End-to-end tests for the nestcontain command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestGenerateIndexQuery:
    def test_full_pipeline(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")

        assert main(["generate", "--dataset", "dblp", "--size", "60",
                     "-o", collection]) == 0
        out = capsys.readouterr().out
        assert "wrote 60 records" in out

        assert main(["index", collection, "-o", index_path]) == 0
        out = capsys.readouterr().out
        assert "indexed 60 records" in out

        assert main(["info", index_path, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "records:        60" in out

        # #article appears in every record's root set.
        assert main(["query", index_path, "{#article}",
                     "--algorithm", "bottomup"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 60
        assert "60 records" in captured.err

    def test_query_options(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "uniform-wide", "--size", "30",
              "-o", collection])
        main(["index", collection, "--storage", "btree", "-o", index_path])
        capsys.readouterr()
        assert main(["query", index_path, "{}", "--storage", "btree",
                     "--semantics", "homeo", "--cache", "lru"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 30  # {} matches everything


class TestExplainAndSimilar:
    @pytest.fixture
    def built_index(self, tmp_path, capsys) -> str:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "zipf-wide", "--size", "80",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()
        return index_path

    def test_explain(self, built_index, capsys) -> None:
        assert main(["explain", built_index, "{v0, {v1}}"]) == 0
        out = capsys.readouterr().out
        assert "matches=" in out
        assert "candidates=" in out
        assert out.count("node ") == 2

    def test_explain_with_options(self, built_index, capsys) -> None:
        assert main(["explain", built_index, "{v0}",
                     "--semantics", "homeo", "--mode", "anywhere"]) == 0
        assert "matches=" in capsys.readouterr().out

    def test_similar(self, built_index, capsys) -> None:
        assert main(["similar", built_index, "{v0, v1, v2}",
                     "-k", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 3
        scores = [float(line.split()[0]) for line in lines]
        assert scores == sorted(scores, reverse=True)


class TestBench:
    def test_bench_prints_figure(self, capsys) -> None:
        assert main(["bench", "--dataset", "dblp", "--sizes", "40,80",
                     "--queries", "6", "--repeats", "2",
                     "--algorithms", "bottomup"]) == 0
        out = capsys.readouterr().out
        assert "bottomup" in out
        assert "bottomup+cache" in out
        assert "40" in out and "80" in out


class TestParser:
    def test_subcommand_required(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_validated(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--dataset", "oracle",
                                       "-o", "x"])


class TestReport:
    def test_report_renders_saved_results(self, tmp_path, capsys) -> None:
        import json
        rows = [{"series": "topdown", "x": 1000, "millis": 5.0},
                {"series": "topdown", "x": 2000, "millis": 9.0}]
        (tmp_path / "myexp.json").write_text(json.dumps(rows))
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== myexp ==" in out
        assert "topdown" in out

    def test_report_single_experiment(self, tmp_path, capsys) -> None:
        import json
        rows = [{"series": "s", "x": "subset", "millis": 2.0}]
        (tmp_path / "joins.json").write_text(json.dumps(rows))
        assert main(["report", "--dir", str(tmp_path),
                     "--experiment", "joins"]) == 0
        assert "#" in capsys.readouterr().out

    def test_report_empty_dir(self, tmp_path, capsys) -> None:
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "no results" in capsys.readouterr().out


class TestCheckCommand:
    def test_healthy_index(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "dblp", "--size", "30",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()
        assert main(["check", index_path]) == 0
        assert "healthy" in capsys.readouterr().out
