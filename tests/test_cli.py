"""End-to-end tests for the nestcontain command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestGenerateIndexQuery:
    def test_full_pipeline(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")

        assert main(["generate", "--dataset", "dblp", "--size", "60",
                     "-o", collection]) == 0
        out = capsys.readouterr().out
        assert "wrote 60 records" in out

        assert main(["index", collection, "-o", index_path]) == 0
        out = capsys.readouterr().out
        assert "indexed 60 records" in out

        assert main(["info", index_path, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "records:        60" in out

        # #article appears in every record's root set.
        assert main(["query", index_path, "{#article}",
                     "--algorithm", "bottomup"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 60
        assert "60 records" in captured.err

    def test_query_options(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "uniform-wide", "--size", "30",
              "-o", collection])
        main(["index", collection, "--storage", "btree", "-o", index_path])
        capsys.readouterr()
        assert main(["query", index_path, "{}", "--storage", "btree",
                     "--semantics", "homeo", "--cache", "lru"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 30  # {} matches everything


class TestExplainAndSimilar:
    @pytest.fixture
    def built_index(self, tmp_path, capsys) -> str:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "zipf-wide", "--size", "80",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()
        return index_path

    def test_explain(self, built_index, capsys) -> None:
        assert main(["explain", built_index, "{v0, {v1}}"]) == 0
        out = capsys.readouterr().out
        assert "matches=" in out
        assert "candidates=" in out
        assert out.count("node ") == 2

    def test_explain_with_options(self, built_index, capsys) -> None:
        assert main(["explain", built_index, "{v0}",
                     "--semantics", "homeo", "--mode", "anywhere"]) == 0
        assert "matches=" in capsys.readouterr().out

    def test_similar(self, built_index, capsys) -> None:
        assert main(["similar", built_index, "{v0, v1, v2}",
                     "-k", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 3
        scores = [float(line.split()[0]) for line in lines]
        assert scores == sorted(scores, reverse=True)


class TestBench:
    def test_bench_prints_figure(self, capsys) -> None:
        assert main(["bench", "--dataset", "dblp", "--sizes", "40,80",
                     "--queries", "6", "--repeats", "2",
                     "--algorithms", "bottomup"]) == 0
        out = capsys.readouterr().out
        assert "bottomup" in out
        assert "bottomup+cache" in out
        assert "40" in out and "80" in out


class TestParser:
    def test_subcommand_required(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_validated(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--dataset", "oracle",
                                       "-o", "x"])


class TestReport:
    def test_report_renders_saved_results(self, tmp_path, capsys) -> None:
        import json
        rows = [{"series": "topdown", "x": 1000, "millis": 5.0},
                {"series": "topdown", "x": 2000, "millis": 9.0}]
        (tmp_path / "myexp.json").write_text(json.dumps(rows))
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== myexp ==" in out
        assert "topdown" in out

    def test_report_single_experiment(self, tmp_path, capsys) -> None:
        import json
        rows = [{"series": "s", "x": "subset", "millis": 2.0}]
        (tmp_path / "joins.json").write_text(json.dumps(rows))
        assert main(["report", "--dir", str(tmp_path),
                     "--experiment", "joins"]) == 0
        assert "#" in capsys.readouterr().out

    def test_report_empty_dir(self, tmp_path, capsys) -> None:
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "no results" in capsys.readouterr().out


class TestCheckCommand:
    def test_healthy_index(self, tmp_path, capsys) -> None:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "dblp", "--size", "30",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()
        assert main(["check", index_path]) == 0
        assert "healthy" in capsys.readouterr().out


class TestQueriesFile:
    @pytest.fixture
    def built_index(self, tmp_path, capsys) -> str:
        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "dblp", "--size", "40",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()
        return index_path

    def test_batch_from_file(self, built_index, tmp_path,
                             capsys) -> None:
        queries_path = tmp_path / "queries.txt"
        queries_path.write_text("{#article}\n"
                                "# a comment line, skipped\n"
                                "\n"
                                "{no_such_atom}\n")
        assert main(["query", built_index, "--queries-file",
                     str(queries_path)]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == 2            # one line per query
        assert len(lines[0].split("\t")) == 40  # every record matches
        assert lines[1] == ""             # no hits -> empty line
        assert "2 queries" in captured.err
        assert "batched" in captured.err

    def test_batch_from_stdin(self, built_index, capsys,
                              monkeypatch) -> None:
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO("{#article}\n"))
        assert main(["query", built_index, "--queries-file", "-"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 1

    def test_batch_matches_single_queries(self, built_index, tmp_path,
                                          capsys) -> None:
        queries = ["{#article}", "{no_such_atom}"]
        singles = []
        for query in queries:
            assert main(["query", built_index, query]) == 0
            singles.append(capsys.readouterr().out.strip().splitlines())
        queries_path = tmp_path / "q.txt"
        queries_path.write_text("\n".join(queries) + "\n")
        assert main(["query", built_index, "--queries-file",
                     str(queries_path)]) == 0
        batched = [line.split("\t") if line else []
                   for line in capsys.readouterr().out.splitlines()]
        assert batched == singles

    def test_query_and_file_mutually_exclusive(self, built_index,
                                               tmp_path,
                                               capsys) -> None:
        queries_path = tmp_path / "q.txt"
        queries_path.write_text("{a}\n")
        assert main(["query", built_index, "{a}", "--queries-file",
                     str(queries_path)]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["query", built_index]) == 2


class TestServeCommand:
    def test_serve_and_info_server(self, tmp_path, capsys) -> None:
        import threading

        collection = str(tmp_path / "c.nsets")
        index_path = str(tmp_path / "c.idx")
        main(["generate", "--dataset", "dblp", "--size", "30",
              "-o", collection])
        main(["index", collection, "-o", index_path])
        capsys.readouterr()

        from repro.core.engine import NestedSetIndex
        from repro.server import ServerThread, ServiceClient

        with NestedSetIndex.open("diskhash", index_path) as index:
            with ServerThread(index, batch_window_ms=1,
                              close_index_on_drain=False) as handle:
                with ServiceClient(port=handle.port) as client:
                    served = client.query("{#article}")
                assert main(["info", "--server",
                             f"127.0.0.1:{handle.port}"]) == 0
                out = capsys.readouterr().out
                assert "requests:" in out
                assert "coalesce ratio" in out
                assert "latency:" in out
            truth = index.query("{#article}")
        assert served == truth

    def test_info_requires_index_or_server(self, capsys) -> None:
        assert main(["info"]) == 2
        assert "--server" in capsys.readouterr().err

    def test_serve_parser_defaults(self) -> None:
        args = build_parser().parse_args(["serve", "x.idx"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_inflight == 64
        assert args.batch_window_ms == 2.0
        assert args.cache == "frequency"
