"""Property-based invariants spanning the whole library (hypothesis).

These are the repo-wide guarantees DESIGN.md's testing strategy calls for:
algorithm agreement, semantics inclusions, join dualities, workload
protocol soundness, and storage/codec round-trips -- each checked over
generated inputs rather than hand-picked cases.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.bottomup import bottomup_match_nodes
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.naive import reference_query
from repro.core.semantics import (
    hom_contains,
    homeo_contains,
    iso_contains,
)
from repro.core.topdown import topdown_match_nodes, topdown_paper_match_nodes

ATOMS = st.sampled_from(["a", "b", "c", "d", "e"])


def trees(max_atoms: int = 3, max_children: int = 2):
    return st.recursive(
        st.builds(lambda a: NestedSet(a), st.lists(ATOMS, min_size=1,
                                                   max_size=max_atoms)),
        lambda kids: st.builds(
            lambda a, c: NestedSet(a, c),
            st.lists(ATOMS, max_size=max_atoms),
            st.lists(kids, min_size=1, max_size=max_children)),
        max_leaves=10)


def collections():
    return st.lists(trees(), min_size=1, max_size=8).map(
        lambda items: [(f"r{i}", tree) for i, tree in enumerate(items)])


class TestAlgorithmAgreement:
    @settings(max_examples=120, deadline=None)
    @given(collections(), trees())
    def test_all_semantics_and_modes(self, records, query) -> None:
        index = InvertedFile.build(records)
        for semantics in ("hom", "iso", "homeo"):
            for mode in ("root", "anywhere"):
                spec = QuerySpec(semantics=semantics, mode=mode)
                expect = reference_query(records, query, spec)
                td = index.heads_to_keys(
                    topdown_match_nodes(query, index, spec), mode=mode)
                bu = index.heads_to_keys(
                    bottomup_match_nodes(query, index, spec), mode=mode)
                assert td == expect
                assert bu == expect

    @settings(max_examples=100, deadline=None)
    @given(collections(), trees())
    def test_join_types(self, records, query) -> None:
        index = InvertedFile.build(records)
        for join, epsilon in (("equality", 1), ("superset", 1),
                              ("overlap", 1), ("overlap", 2)):
            spec = QuerySpec(join=join, epsilon=epsilon)
            expect = reference_query(records, query, spec)
            td = index.heads_to_keys(
                topdown_match_nodes(query, index, spec))
            bu = index.heads_to_keys(
                bottomup_match_nodes(query, index, spec))
            assert td == expect
            assert bu == expect

    @settings(max_examples=100, deadline=None)
    @given(collections(), trees())
    def test_paper_literal_never_misses(self, records, query) -> None:
        index = InvertedFile.build(records)
        expect = set(reference_query(records, query, QuerySpec()))
        got = set(index.heads_to_keys(
            topdown_paper_match_nodes(query, index)))
        assert got >= expect


class TestStructuralInvariants:
    @settings(max_examples=100, deadline=None)
    @given(collections())
    def test_every_record_contains_itself(self, records) -> None:
        index = InvertedFile.build(records)
        for key, tree in records:
            keys = index.heads_to_keys(bottomup_match_nodes(tree, index))
            assert key in keys

    @settings(max_examples=100, deadline=None)
    @given(collections())
    def test_distorted_record_matches_nothing(self, records) -> None:
        index = InvertedFile.build(records)
        query = records[0][1].with_atom("__fresh__")
        assert bottomup_match_nodes(query, index) == set()
        assert topdown_match_nodes(query, index) == set()

    @settings(max_examples=80, deadline=None)
    @given(collections(), trees())
    def test_index_semantics_inclusions(self, records, query) -> None:
        index = InvertedFile.build(records)
        iso = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(semantics="iso"))))
        hom = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(semantics="hom"))))
        homeo = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(semantics="homeo"))))
        assert iso <= hom <= homeo

    @settings(max_examples=80, deadline=None)
    @given(collections(), trees())
    def test_equality_inside_subset_and_superset(self, records,
                                                 query) -> None:
        index = InvertedFile.build(records)
        eq = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(join="equality"))))
        sub = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(join="subset"))))
        sup = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(join="superset"))))
        assert eq <= sub
        assert eq <= sup
        # equality is exactly the intersection for identical trees
        for key in eq:
            tree = dict(records)[key]
            assert tree == query

    @settings(max_examples=80, deadline=None)
    @given(collections(), trees())
    def test_overlap_monotone_in_epsilon(self, records, query) -> None:
        index = InvertedFile.build(records)
        previous = None
        for epsilon in (1, 2, 3):
            current = set(index.heads_to_keys(bottomup_match_nodes(
                query, index, QuerySpec(join="overlap", epsilon=epsilon))))
            if previous is not None:
                assert current <= previous
            previous = current

    @settings(max_examples=80, deadline=None)
    @given(collections(), trees())
    def test_subset_implies_overlap1(self, records, query) -> None:
        # Non-empty leaf sets at every level make ⊆ stronger than ⋓1.
        if any(not node.atoms for node in query.iter_sets()):
            return
        index = InvertedFile.build(records)
        sub = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec())))
        ov1 = set(index.heads_to_keys(bottomup_match_nodes(
            query, index, QuerySpec(join="overlap", epsilon=1))))
        assert sub <= ov1

    @settings(max_examples=60, deadline=None)
    @given(trees(), trees())
    def test_superset_duality_via_index(self, left, right) -> None:
        index = InvertedFile.build([("L", left)])
        sup = index.heads_to_keys(bottomup_match_nodes(
            right, index, QuerySpec(join="superset")))
        assert (sup == ["L"]) == hom_contains(right, left)

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_reflexivity_all_semantics(self, tree) -> None:
        assert iso_contains(tree, tree)
        assert hom_contains(tree, tree)
        assert homeo_contains(tree, tree)


class TestRoundTrips:
    @settings(max_examples=100, deadline=None)
    @given(collections())
    def test_index_record_store_roundtrip(self, records) -> None:
        index = InvertedFile.build(records)
        assert [(key, tree) for _o, key, _r, tree
                in index.iter_records()] == records

    @settings(max_examples=100, deadline=None)
    @given(trees())
    def test_text_roundtrip(self, tree) -> None:
        assert NestedSet.parse(tree.to_text()) == tree
