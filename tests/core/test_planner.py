"""Tests for selectivity-driven evaluation ordering."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.invfile import InvertedFile
from repro.core.model import NestedSet
from repro.core.planner import Planner, make_planner
from repro.core.stats import CollectionStats
from repro.core.topdown import topdown_match_nodes
from tests.conftest import random_tree

N = NestedSet


@pytest.fixture
def corpus_index(small_corpus) -> InvertedFile:
    return InvertedFile.build(small_corpus)


@pytest.fixture
def stats(corpus_index) -> CollectionStats:
    return CollectionStats.from_inverted_file(corpus_index)


class TestOrdering:
    def test_selective_first_order(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        stats = CollectionStats.from_inverted_file(index)
        planner = Planner(stats)
        rare = N(["London"])    # df 1
        common = N(["UK"])      # df 4
        ordered = planner.order_children([common, rare])
        assert ordered == [rare, common]

    def test_bulky_first_reverses(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        stats = CollectionStats.from_inverted_file(index)
        rare, common = N(["London"]), N(["UK"])
        ordered = Planner(stats, "bulky-first").order_children(
            [rare, common])
        assert ordered == [common, rare]

    def test_text_strategy_is_canonical(self, stats) -> None:
        planner = Planner(stats, "text")
        children = [N(["zz"]), N(["aa"])]
        assert [c.to_text() for c in planner.order_children(children)] == \
            ["{aa}", "{zz}"]

    def test_subtree_estimate_uses_tightest_node(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        planner = Planner(CollectionStats.from_inverted_file(index))
        # Subtree containing London (df 1) bounds the whole subtree at 1.
        subtree = N(["UK"], [N(["London"])])
        assert planner.estimate_subtree_matches(subtree) == 1

    def test_unknown_strategy(self, stats) -> None:
        with pytest.raises(ValueError):
            Planner(stats, "oracle")

    def test_factory(self, stats) -> None:
        assert make_planner(None, stats) is None
        assert isinstance(make_planner("selective-first", stats), Planner)


class TestPlannedEvaluationCorrectness:
    """Ordering must never change results, only their cost."""

    @pytest.mark.parametrize("strategy",
                             ["selective-first", "bulky-first", "text"])
    def test_results_invariant(self, small_corpus, corpus_index, stats,
                               strategy: str) -> None:
        planner = Planner(stats, strategy)
        rng = random.Random(strategy)
        atoms = [f"a{i}" for i in range(12)]
        for _ in range(40):
            query = random_tree(rng, atoms)
            baseline = topdown_match_nodes(query, corpus_index)
            planned = topdown_match_nodes(
                query, corpus_index, child_order=planner.as_child_order())
            assert planned == baseline

    def test_engine_integration(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        query = small_corpus[0][1]
        baseline = index.query(query, algorithm="topdown")
        assert index.query(query, algorithm="topdown",
                           planner="selective-first") == baseline
        with pytest.raises(ValueError):
            index.query(query, algorithm="bottomup",
                        planner="selective-first")
