"""Tests for posting lists and the inverted-list operations of Section 2."""

from __future__ import annotations

import pytest

from repro.core.postings import (
    PathList,
    PostingList,
    heads_with_child_in,
    intersect,
    multiset_union,
    nav_join,
    nav_join_descendant,
)


class TestPostingList:
    def test_from_unsorted(self) -> None:
        plist = PostingList.from_unsorted([(5, ()), (1, (2,))])
        assert plist.entries == ((1, (2,)), (5, ()))

    def test_heads(self) -> None:
        plist = PostingList([(1, (2,)), (7, ())])
        assert plist.heads() == {1, 7}

    def test_encode_decode(self) -> None:
        plist = PostingList([(1, (2, 3)), (9, ())])
        assert PostingList.decode(plist.encode()) == plist

    def test_truthiness_and_len(self) -> None:
        assert not PostingList()
        assert len(PostingList([(1, ())])) == 1


class TestIntersect:
    def test_requires_input(self) -> None:
        with pytest.raises(ValueError):
            intersect([])

    def test_single_list_identity(self) -> None:
        plist = PostingList([(1, ())])
        assert intersect([plist]) is plist

    def test_intersection_on_heads(self) -> None:
        a = PostingList([(1, (2,)), (5, ()), (9, (10,))])
        b = PostingList([(5, ()), (9, (10,))])
        c = PostingList([(9, (10,)), (11, ())])
        assert intersect([a, b, c]).heads() == {9}

    def test_empty_operand_empties_result(self) -> None:
        a = PostingList([(1, ())])
        assert intersect([a, PostingList()]) == PostingList()

    def test_paper_example(self) -> None:
        # S_IF(A) ∩ S_IF(motorbike) on Table 2's lists (ids renamed):
        # A appears at m2, m4, n2; motorbike at m4, n2 -> {m4, n2}.
        a_list = PostingList([(2, ()), (4, ()), (12, ())])
        moto_list = PostingList([(4, ()), (12, ())])
        assert intersect([a_list, moto_list]).heads() == {4, 12}


class TestMultisetUnion:
    def test_counts_multiplicity(self) -> None:
        a = PostingList([(1, ()), (2, (3,))])
        b = PostingList([(2, (3,)), (4, ())])
        union = multiset_union([a, b])
        assert union == [(1, (), 1), (2, (3,), 2), (4, (), 1)]

    def test_empty(self) -> None:
        assert multiset_union([]) == []
        assert multiset_union([PostingList()]) == []


class TestNavJoin:
    def test_paper_running_example(self) -> None:
        # R0 = S_IF(USA) = <(m1,(m2)), (r_tim,(m1,m3))>, ids: m1=1, m2=2,
        # m3=3, m4=4, r_tim=10.  S_IF(UK) = <(m3,(m4)), (n1,(n2)), ...>.
        r0 = PathList([(1, (2,)), (10, (1, 3))])
        uk = PostingList([(3, (4,)), (21, (22,)), (30, (21,))])
        r1 = nav_join(r0, uk)
        # Only m3 ∈ {m1, m3} matches: path head r_tim, frontier (m4).
        assert list(r1) == [(10, (4,))]

    def test_multiple_heads_per_candidate(self) -> None:
        paths = PathList([(100, (7,)), (200, (7,))])
        cand = PostingList([(7, (8,))])
        joined = nav_join(paths, cand)
        assert sorted(joined) == [(100, (8,)), (200, (8,))]

    def test_duplicate_paths_collapse(self) -> None:
        paths = PathList([(100, (7, 9)), (100, (7,))])
        cand = PostingList([(7, ())])
        assert list(nav_join(paths, cand)) == [(100, ())]

    def test_empty_inputs(self) -> None:
        assert not nav_join(PathList(), PostingList([(1, ())]))
        assert not nav_join(PathList([(1, (2,))]), PostingList())

    def test_heads_preserved_not_replaced(self) -> None:
        # The ▷-join result keeps the ORIGINAL head p, with the new
        # frontier C' (definition in Section 2).
        paths = PathList([(42, (5,))])
        cand = PostingList([(5, (6, 7))])
        assert list(nav_join(paths, cand)) == [(42, (6, 7))]


class TestNavJoinDescendant:
    def test_interval_membership(self) -> None:
        # Path matched at node 10 with subtree (10, 20].
        paths = [(1, 10, 20)]
        cand = PostingList([(5, ()), (15, (16,)), (25, ())])
        out = nav_join_descendant(paths, cand)
        assert [(head, node) for head, node, _ in out] == [(1, 15)]

    def test_boundaries(self) -> None:
        paths = [(1, 10, 20)]
        cand = PostingList([(10, ()), (20, ()), (21, ())])
        out = nav_join_descendant(paths, cand)
        # 10 itself is excluded (proper descendant); 20 included; 21 not.
        assert [node for _h, node, _e in out] == [20]


class TestHeadsWithChildIn:
    def test_all_sets_must_hit(self) -> None:
        cand = PostingList([(1, (2, 3)), (5, (6,))])
        assert heads_with_child_in(cand, [{2}, {3}]).heads() == {1}
        assert heads_with_child_in(cand, [{2}, {6}]).heads() == set()

    def test_no_requirements_keeps_all(self) -> None:
        cand = PostingList([(1, ())])
        assert heads_with_child_in(cand, []) is cand
