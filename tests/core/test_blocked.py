"""Property tests for the block-compressed posting format.

Three layers are covered: the codec (``encode_blocked`` and friends must
round-trip any sorted posting list and keep decoding the two older
formats), the lazy reader (:class:`LazyPostingList` + ``BlockCache``),
and the galloping intersection kernel, which is checked against the
plain hash-set baseline over 500 randomized list combinations.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import BlockCache
from repro.core.invfile import QueryStats
from repro.core.postings import LazyPostingList, PostingList, intersect
from repro.storage.codec import (
    BLOCKED_FORMAT_BYTE,
    PACKED_FORMAT_BYTE,
    CorruptionError,
    append_blocked,
    decode_block,
    decode_blocked,
    decode_blocked_header,
    decode_postings,
    encode_blocked,
    encode_postings,
)


def _random_postings(rng: random.Random, size: int,
                     head_space: int = 10_000) -> list:
    """A sorted posting list with unique heads and sorted children."""
    heads = sorted(rng.sample(range(head_space), size))
    out = []
    for p in heads:
        n_children = rng.randrange(0, 4)
        children = tuple(sorted(rng.sample(range(head_space), n_children)))
        out.append((p, children))
    return out


class TestCodecRoundTrip:
    def test_round_trip_random(self) -> None:
        rng = random.Random(7)
        for _ in range(50):
            size = rng.randrange(0, 400)
            block_size = rng.choice([1, 2, 3, 7, 64, 128, 1000])
            entries = _random_postings(rng, size)
            raw = encode_blocked(entries, block_size)
            assert raw[0] == PACKED_FORMAT_BYTE   # packed is the default
            assert decode_blocked(raw) == entries
            legacy = encode_blocked(entries, block_size, packed=False)
            assert legacy[0] == BLOCKED_FORMAT_BYTE
            assert decode_blocked(legacy) == entries

    def test_header_directory(self) -> None:
        rng = random.Random(8)
        entries = _random_postings(rng, 100)
        raw = encode_blocked(entries, 16)
        header = decode_blocked_header(raw)
        assert header.total == 100
        assert header.block_size == 16
        assert len(header.blocks) == 7          # ceil(100 / 16)
        assert sum(info.count for info in header.blocks) == 100
        at = 0
        for info in header.blocks:
            chunk = entries[at:at + info.count]
            assert info.min_head == chunk[0][0]
            assert info.max_head == chunk[-1][0]
            assert decode_block(raw, info) == chunk
            at += info.count

    def test_legacy_plain_format_still_decodes(self) -> None:
        # Indexes written before the blocked format carry plain
        # ``encode_postings`` values; the codec must keep decoding them.
        rng = random.Random(9)
        entries = _random_postings(rng, 150)
        raw = encode_postings(entries)
        assert decode_postings(raw) == entries
        assert PostingList.decode(raw).entries == tuple(entries)

    def test_blocked_header_rejects_plain(self) -> None:
        raw = encode_postings([(1, ()), (2, (3,))])
        with pytest.raises(CorruptionError):
            decode_blocked_header(raw)

    def test_truncation_detected(self) -> None:
        rng = random.Random(10)
        raw = encode_blocked(_random_postings(rng, 64), 8)
        with pytest.raises(CorruptionError):
            decode_blocked_header(raw[:len(raw) - 5])

    def test_unsorted_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_blocked([(5, ()), (3, ())], 1)


class TestAppendBlocked:
    def test_append_matches_full_reencode(self) -> None:
        # The tail-only re-encode must be byte-identical to encoding the
        # combined list from scratch (blocks align on size boundaries).
        rng = random.Random(11)
        for _ in range(25):
            base = _random_postings(rng, rng.randrange(1, 120),
                                    head_space=5_000)
            extra = [(p + 5_000, c) for p, c in
                     _random_postings(rng, rng.randrange(1, 40),
                                      head_space=5_000)]
            block_size = rng.choice([1, 4, 16, 128])
            raw = encode_blocked(base, block_size)
            appended = append_blocked(raw, extra)
            assert appended == encode_blocked(base + extra, block_size)

    def test_append_nothing_is_identity(self) -> None:
        raw = encode_blocked([(1, ()), (9, (2,))], 4)
        assert append_blocked(raw, []) is raw

    def test_append_rejects_overlapping_heads(self) -> None:
        raw = encode_blocked([(1, ()), (9, ())], 4)
        with pytest.raises(ValueError):
            append_blocked(raw, [(9, ())])


class TestLazyPostingList:
    def test_reads_match_eager_decode(self) -> None:
        rng = random.Random(12)
        entries = _random_postings(rng, 200)
        lazy = LazyPostingList(encode_blocked(entries, 16))
        assert len(lazy) == 200                 # O(1), no decode
        assert list(lazy) == entries
        assert lazy.entries == tuple(entries)
        assert lazy.heads() == {p for p, _ in entries}
        assert lazy == PostingList(entries)
        assert PostingList(entries) == lazy

    def test_seek_decodes_at_most_one_block(self) -> None:
        rng = random.Random(13)
        entries = _random_postings(rng, 160, head_space=2_000)
        stats = QueryStats()
        lazy = LazyPostingList(encode_blocked(entries, 16), stats=stats)
        present = dict(entries)
        for p, children in entries[::7]:
            before = stats.blocks_read
            assert lazy.seek(p) == (p, children)
            assert stats.blocks_read - before <= 1
        for head in range(0, 2_000, 97):
            if head not in present:
                assert lazy.seek(head) is None

    def test_blocks_route_through_shared_cache(self) -> None:
        rng = random.Random(14)
        entries = _random_postings(rng, 64)
        raw = encode_blocked(entries, 8)
        cache = BlockCache(budget=64)
        stats = QueryStats()

        first = LazyPostingList(raw, cache=cache, cache_key="a", stats=stats)
        assert first.entries == tuple(entries)
        reads = stats.blocks_read
        assert reads == 8 and len(cache) == 8

        second = LazyPostingList(raw, cache=cache, cache_key="a", stats=stats)
        assert second.entries == tuple(entries)
        assert stats.blocks_read == reads       # all hits, no new decodes

    def test_cache_invalidate_is_per_list(self) -> None:
        cache = BlockCache(budget=16)
        for key in ("a", "b"):
            for block_no in range(3):
                cache.admit((key, block_no), ((1, ()),))
        cache.invalidate({"a"})
        assert len(cache) == 3
        assert cache.get(("a", 0)) is None
        assert cache.get(("b", 0)) is not None

    def test_cache_evicts_lru_within_budget(self) -> None:
        cache = BlockCache(budget=2)
        cache.admit(("a", 0), ((1, ()),))
        cache.admit(("a", 1), ((2, ()),))
        cache.get(("a", 0))                     # refresh 0; 1 becomes LRU
        cache.admit(("a", 2), ((3, ()),))
        assert cache.get(("a", 1)) is None
        assert cache.get(("a", 0)) is not None
        assert cache.stats.evictions == 1


class TestGallopingIntersection:
    def test_equivalence_500_random_combinations(self) -> None:
        # The kernel must agree with the hash-set baseline on every mix
        # of plain and blocked operands, regardless of skew or overlap.
        rng = random.Random(15)
        for trial in range(500):
            n_lists = rng.randrange(2, 5)
            head_space = rng.choice([40, 200, 1_000])
            max_size = min(60, head_space)
            raw_lists = [_random_postings(rng, rng.randrange(0, max_size),
                                          head_space=head_space)
                         for _ in range(n_lists)]

            common = rng.randrange(0, len(raw_lists[0]) + 1)
            shared = raw_lists[0][:common]
            lists = [sorted(set(entries) | set(shared))
                     for entries in raw_lists]
            lists = [[(p, c) for i, (p, c) in enumerate(entries)
                      if i == 0 or entries[i - 1][0] != p]
                     for entries in lists]

            plain = [PostingList(entries) for entries in lists]
            expected = intersect(plain).entries

            block_size = rng.choice([1, 4, 16])
            blocked = [LazyPostingList(encode_blocked(entries, block_size))
                       for entries in lists]
            assert intersect(blocked).entries == expected, trial

            mixed = [blocked[i] if i % 2 else plain[i]
                     for i in range(n_lists)]
            assert intersect(mixed).entries == expected, trial

    def test_empty_operand_short_circuits_without_decoding(self) -> None:
        rng = random.Random(16)
        stats = QueryStats()
        big = LazyPostingList(
            encode_blocked(_random_postings(rng, 256), 16), stats=stats)
        result = intersect([big, PostingList()])
        assert result == PostingList()
        assert stats.blocks_read == 0           # satellite (b): no decode

    def test_skip_counters_move_on_skewed_probe(self) -> None:
        stats = QueryStats()
        hot = [(p, ()) for p in range(1_000)]
        rare = PostingList([(0, ()), (999, ())])
        lazy = LazyPostingList(encode_blocked(hot, 16), stats=stats)
        got = intersect([lazy, rare])
        assert got.entries == ((0, ()), (999, ()))
        assert stats.blocks_read == 2           # first and last block only
        assert stats.blocks_skipped > 0
        assert stats.bytes_decoded > 0
