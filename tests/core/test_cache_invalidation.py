"""Result-cache and batch-memo correctness across index mutations.

The regression these tests pin: a query evaluated *after* a delete must
never surface a tombstoned record from a stale cache entry, and inserts
must become visible immediately.  For the sharded index the same
contract holds shard-wise -- and only the mutated shard's cache drops
its entries (partial invalidation is the sharded layout's headline
advantage on mixed workloads).
"""

from __future__ import annotations

from repro.core.engine import NestedSetIndex
from repro.core.shard import HashShardPolicy, ShardedIndex

RECORDS = [(f"r{i}", "{hub, leaf%d}".replace("%d", str(i % 4)))
           for i in range(16)]


class TestMonolithicInvalidation:
    def test_delete_never_served_from_cache(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        cache = index.enable_result_cache()
        assert "r3" in index.query("{hub}")
        assert "r3" in index.query("{hub}")          # cached
        assert cache.stats.hits == 1
        index.delete("r3")
        result = index.query("{hub}")
        assert "r3" not in result                    # not from stale cache
        assert cache.stats.invalidations == 1

    def test_insert_visible_after_cached_query(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")
        index.insert("fresh", "{hub}")
        assert "fresh" in index.query("{hub}")

    def test_compact_invalidates(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        index.enable_result_cache()
        index.delete("r0")
        expected = index.query("{hub}")
        index.compact()
        assert index.query("{hub}") == expected

    def test_batch_memo_never_stale(self) -> None:
        # The shared-subquery memo lives in a per-call execution context,
        # so a batch after a mutation can never reuse pre-mutation node
        # sets; this pins that property.
        index = NestedSetIndex.build(RECORDS)
        queries = ["{hub}", "{hub, leaf1}"]
        index.query_batch(queries, share_subqueries=True)
        index.delete("r1")
        for result in index.query_batch(queries, share_subqueries=True):
            assert "r1" not in result


class TestShardedPartialInvalidation:
    def test_only_owning_shard_cache_drops(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=4)
        index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")                     # warm: one entry per shard
        per_shard_before = [len(engine.result_cache)
                            for engine in index.shards]
        assert all(count == 1 for count in per_shard_before)

        owner = HashShardPolicy().shard_of("fresh", index.n_shards)
        index.insert("fresh", "{hub}")
        per_shard_after = [len(engine.result_cache)
                           for engine in index.shards]
        assert per_shard_after[owner] == 0       # owner invalidated
        for shard_no, count in enumerate(per_shard_after):
            if shard_no != owner:
                assert count == 1                # others stay warm

        result = index.query("{hub}")
        assert "fresh" in result                 # and answers are correct
        assert sorted(result) == result

    def test_sharded_delete_never_served_from_cache(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        cache = index.enable_result_cache()
        assert "r5" in index.query("{hub}")
        index.query("{hub}")
        assert cache.stats.hits >= 1
        index.delete("r5")
        assert "r5" not in index.query("{hub}")

    def test_aggregate_cache_view(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        cache = index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")
        assert len(cache) == 3                   # one entry per shard
        assert cache.stats.hits == 3             # second run all-hit
        cache.invalidate_all()
        assert len(cache) == 0
        index.disable_result_cache()
        assert index.result_cache is None
        assert all(engine.result_cache is None for engine in index.shards)

    def test_sharded_compact_with_cache(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        index.enable_result_cache()
        index.delete("r2")
        expected = index.query("{hub}")
        index.compact()
        assert index.query("{hub}") == expected
        assert index.query("{hub}") == expected  # cached post-compact
