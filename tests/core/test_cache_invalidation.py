"""Result-cache and batch-memo correctness across index mutations.

The regression these tests pin: a query evaluated *after* a delete must
never surface a tombstoned record from a stale cache entry, and inserts
must become visible immediately.  Under MVCC the cache achieves that by
*version scoping* rather than invalidation -- a mutation opens a fresh
key space and the stale entries simply become unreachable to new
readers.  For the sharded index the same contract holds shard-wise --
and only the mutated shard's entries go stale (mutation locality is the
sharded layout's headline advantage on mixed workloads)."""

from __future__ import annotations

from repro.core.engine import NestedSetIndex
from repro.core.shard import HashShardPolicy, ShardedIndex

RECORDS = [(f"r{i}", "{hub, leaf%d}".replace("%d", str(i % 4)))
           for i in range(16)]


class TestMonolithicInvalidation:
    def test_delete_never_served_from_cache(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        cache = index.enable_result_cache()
        assert "r3" in index.query("{hub}")
        assert "r3" in index.query("{hub}")          # cached
        assert cache.stats.hits == 1
        index.delete("r3")
        result = index.query("{hub}")
        assert "r3" not in result                    # not from stale cache
        # Version scoping, not invalidation: the pre-delete entry stays
        # in the LRU (unreachable to new readers) and the post-delete
        # answer was freshly computed, then cached under the new scope.
        assert cache.stats.misses == 2
        assert "r3" not in index.query("{hub}")
        assert cache.stats.hits == 2

    def test_insert_visible_after_cached_query(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")
        index.insert("fresh", "{hub}")
        assert "fresh" in index.query("{hub}")

    def test_compact_invalidates(self) -> None:
        index = NestedSetIndex.build(RECORDS)
        index.enable_result_cache()
        index.delete("r0")
        expected = index.query("{hub}")
        index.compact()
        assert index.query("{hub}") == expected

    def test_batch_memo_never_stale(self) -> None:
        # The shared-subquery memo lives in a per-call execution context,
        # so a batch after a mutation can never reuse pre-mutation node
        # sets; this pins that property.
        index = NestedSetIndex.build(RECORDS)
        queries = ["{hub}", "{hub, leaf1}"]
        index.query_batch(queries, share_subqueries=True)
        index.delete("r1")
        for result in index.query_batch(queries, share_subqueries=True):
            assert "r1" not in result


class TestShardedPartialInvalidation:
    def test_only_owning_shard_entries_go_stale(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=4)
        cache = index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")                     # warm: one entry per shard
        assert cache.stats.hits == 4

        index.insert("fresh", "{hub}")
        result = index.query("{hub}")
        assert "fresh" in result                 # and answers are correct
        assert sorted(result) == result
        # Mutation locality: the three untouched shards answered from
        # their still-valid entries; only the owner's scope moved, so
        # only the owner recomputed.  Nothing was invalidated.
        assert cache.stats.hits == 7
        assert cache.stats.invalidations == 0

        owner = HashShardPolicy().shard_of("fresh", index.n_shards)
        per_shard_hits = [engine.result_cache.stats.hits
                          for engine in index.shards]
        for shard_no, hits in enumerate(per_shard_hits):
            assert hits == (1 if shard_no == owner else 2)

    def test_sharded_delete_never_served_from_cache(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        cache = index.enable_result_cache()
        assert "r5" in index.query("{hub}")
        index.query("{hub}")
        assert cache.stats.hits >= 1
        index.delete("r5")
        assert "r5" not in index.query("{hub}")

    def test_aggregate_cache_view(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        cache = index.enable_result_cache()
        index.query("{hub}")
        index.query("{hub}")
        assert len(cache) == 3                   # one entry per shard
        assert cache.stats.hits == 3             # second run all-hit
        cache.invalidate_all()
        assert len(cache) == 0
        index.disable_result_cache()
        assert index.result_cache is None
        assert all(engine.result_cache is None for engine in index.shards)

    def test_sharded_compact_with_cache(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3)
        index.enable_result_cache()
        index.delete("r2")
        expected = index.query("{hub}")
        index.compact()
        assert index.query("{hub}") == expected
        assert index.query("{hub}") == expected  # cached post-compact


class TestStaleRepopulationRaces:
    """The check-then-act race the epoch scheme closes.

    A reader that decoded (or computed) an entry *before* a delete
    landed may admit it to a shared cache *after* the delete's
    invalidation already ran -- the classic check-then-act window.
    Scoped keys make that late admission unreachable to post-delete
    readers instead of poisonous.
    """

    def test_block_cache_stale_readmission_unreachable(self) -> None:
        from repro.core.cache import BlockCache
        cache = BlockCache(budget=8)
        stale = object()
        # An epoch-0 reader decoded block 0 of "tok"'s posting list...
        cache.admit((("tok", 0), 0), stale)
        # ...a delete invalidates every epoch of the token (check)...
        cache.invalidate({"tok"})
        assert cache.get((("tok", 0), 0)) is None
        # ...and the slow reader re-admits its stale block (act).
        cache.admit((("tok", 0), 0), stale)
        # A post-delete reader runs at epoch 1: the stale entry cannot
        # hit it -- while the old-epoch reader itself, for whom the
        # block is still correct, keeps hitting it.
        assert cache.get((("tok", 1), 0)) is None
        assert cache.get((("tok", 0), 0)) is stale

    def test_pinned_reader_repopulation_cannot_poison_live(self) -> None:
        index = NestedSetIndex.build(RECORDS, cache="lru")
        index.enable_result_cache()
        with index.snapshot() as pinned:
            assert "r3" in pinned.query("{hub}")
            index.delete("r3")
            # The pinned reader re-runs *after* the delete: every
            # result/list/block entry it re-populates lands under its
            # own pre-delete scope...
            assert "r3" in pinned.query("{hub}")
            # ...so live readers never see the dead record, no matter
            # how the two interleave.
            assert "r3" not in index.query("{hub}")
            assert "r3" in pinned.query("{hub}")
        assert "r3" not in index.query("{hub}")

    def test_sharded_pinned_repopulation_cannot_poison_live(self) -> None:
        index = ShardedIndex.build(RECORDS, shards=3, cache="lru")
        index.enable_result_cache()
        with index.snapshot() as pinned:
            assert "r3" in pinned.query("{hub}")
            index.delete("r3")
            assert "r3" in pinned.query("{hub}")
            assert "r3" not in index.query("{hub}")
            assert "r3" in pinned.query("{hub}")
        assert "r3" not in index.query("{hub}")
