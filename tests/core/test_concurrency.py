"""Thread-safety regression tests: readers racing writers on one index.

The query service runs engine calls from a thread pool, so the engine's
reader/writer coordination is a correctness contract, not an
implementation detail: any number of concurrent ``query`` calls must see
a consistent index while ``insert``/``delete`` take exclusive ownership.
These tests hammer exactly that contract -- on a monolithic index and on
a 4-shard one -- and check *exact* answers before and after every
mutation, not just the absence of crashes.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.core.parallel import RWLock
from repro.data.ingest import StreamIngestor


class TestRWLock:
    def test_readers_share(self) -> None:
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()     # a second reader must not block
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self) -> None:
        lock = RWLock()
        order: list[str] = []
        with lock.write_locked():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(),
                                order.append("read"),
                                lock.release_read()))
            reader.start()
            reader.join(timeout=0.1)
            assert order == []      # reader parked behind the writer
            order.append("write")
        reader.join(timeout=5)
        assert order == ["write", "read"]

    def test_writer_preference_blocks_new_readers(self) -> None:
        lock = RWLock()
        lock.acquire_read()
        states: list[str] = []
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(),
                            states.append("wrote"),
                            lock.release_write()))
        writer.start()
        deadline = threading.Event()
        deadline.wait(0.05)          # let the writer start waiting
        late_reader = threading.Thread(
            target=lambda: (lock.acquire_read(),
                            states.append("read"),
                            lock.release_read()))
        late_reader.start()
        late_reader.join(timeout=0.1)
        # The late reader queues *behind* the waiting writer: no
        # writer starvation under a steady reader stream.
        assert states == []
        lock.release_read()
        writer.join(timeout=5)
        late_reader.join(timeout=5)
        assert states == ["wrote", "read"]

    def test_write_locked_releases_on_error(self) -> None:
        lock = RWLock()
        with pytest.raises(RuntimeError):
            with lock.write_locked():
                raise RuntimeError("boom")
        with lock.read_locked():    # lock must be free again
            pass


def _build(shards: int):
    records = list(generate_dataset("uniform-wide", 80, seed=11))
    return NestedSetIndex.build(records, shards=shards,
                                workers=2 if shards > 1 else 1)


@pytest.mark.parametrize("shards", [1, 4])
class TestReadersVersusWriters:
    PROBE = "{__live__}"

    def test_exact_answers_around_each_mutation(self, shards) -> None:
        """Single-threaded ground truth: each mutation is fully visible."""
        index = _build(shards)
        expected: list[str] = []
        assert index.query(self.PROBE) == []
        for i in range(8):
            index.insert(f"live{i}", "{__live__, t%d}" % i)
            expected.append(f"live{i}")
            assert index.query(self.PROBE) == sorted(expected)
        for i in range(0, 8, 2):
            assert index.delete(f"live{i}") is True
            expected.remove(f"live{i}")
            assert index.query(self.PROBE) == sorted(expected)
        index.close()

    def test_concurrent_readers_race_mutations(self, shards) -> None:
        """8 reader threads hammer queries while a writer mutates.

        Every answer a reader observes must be *some* prefix of the
        mutation history -- sorted, containing only live-probe keys,
        and never a torn state (e.g. a key half-inserted across
        postings and the record table).
        """
        index = _build(shards)
        # Keys the writer will ever have inserted, in order.
        history = [f"live{i:02d}" for i in range(12)]
        valid_states = set()
        state: tuple = ()
        valid_states.add(state)
        for key in history:                     # states after inserts
            state = tuple(sorted({*state, key}))
            valid_states.add(state)
        for key in history[::3]:                # states after deletes
            state = tuple(k for k in state if k != key)
            valid_states.add(state)

        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    answer = tuple(index.query(self.PROBE))
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"reader raised: {exc!r}")
                    return
                if answer not in valid_states:
                    failures.append(f"torn answer: {answer!r}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        try:
            for key in history:
                index.insert(key, "{__live__, payload}")
            for key in history[::3]:
                assert index.delete(key) is True
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not failures, failures[:3]
        # Final exact answer: all inserts minus the deletes.
        final = sorted(set(history) - set(history[::3]))
        assert index.query(self.PROBE) == final
        index.close()

    def test_snapshot_pinned_before_delete_sees_dead_record(self,
                                                            shards) -> None:
        """MVCC headline: a pin outlives the mutations it predates."""
        index = _build(shards)
        index.insert("doomed", "{__live__, victim}")
        with index.snapshot() as before:
            assert index.delete("doomed") is True
            # Live reads agree the record is gone...
            assert index.query(self.PROBE) == []
            # ...while the pinned reader still sees its version, and
            # keeps seeing it however often it asks.
            assert before.query(self.PROBE) == ["doomed"]
            assert before.query(self.PROBE) == ["doomed"]
        assert index.query(self.PROBE) == []
        index.close()

    def test_snapshot_pinned_before_inserts_is_blind_to_them(self,
                                                             shards) -> None:
        index = _build(shards)
        index.insert("old", "{__live__, t}")
        with index.snapshot() as before:
            # Spread fresh keys across every shard of a sharded layout.
            for i in range(8):
                index.insert(f"new{i}", "{__live__, t%d}" % i)
            assert before.query(self.PROBE) == ["old"]
        expected = sorted(["old"] + [f"new{i}" for i in range(8)])
        assert index.query(self.PROBE) == expected
        index.close()

    def test_readers_race_stream_ingest_one_consistent_version(self,
                                                               shards) -> None:
        """8 readers vs full-speed streaming ingest: every answer is one
        committed version.

        Records arrive through :class:`StreamIngestor` (the ``ingest
        --follow`` machinery), which commits them as WAL groups in
        submission order -- so any consistent answer is a *prefix* of the
        submission sequence, and the two queries of one batch must agree
        exactly (they run against one pinned version).
        """
        index = _build(shards)
        total = 160
        keys = [f"s{i:03d}" for i in range(total)]   # sorted == submit order
        prefixes = {tuple(keys[:i]) for i in range(total + 1)}
        queries = [self.PROBE, "{__live__, payload}"]
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    probe_hits, payload_hits = index.query_batch(queries)
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"reader raised: {exc!r}")
                    return
                if probe_hits != payload_hits:
                    failures.append(
                        f"one batch mixed two versions: {probe_hits!r} "
                        f"vs {payload_hits!r}")
                    return
                if tuple(probe_hits) not in prefixes:
                    failures.append(f"torn/non-prefix state: "
                                    f"{probe_hits!r}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        try:
            with StreamIngestor(index, batch_size=16,
                                flush_interval=0.02) as ingestor:
                for key in keys:
                    ingestor.submit(key, "{__live__, payload}")
                assert ingestor.flush(timeout=60)
                counts = ingestor.counters()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not failures, failures[:3]
        assert counts["records_ingested"] == total
        assert counts["errors"] == 0
        # Batching amortized the WAL groups (far fewer commits than
        # records), which is the point of the streaming path.
        assert counts["groups_committed"] < total
        assert index.query(self.PROBE) == keys
        index.close()

    def test_batch_queries_race_mutations(self, shards) -> None:
        """query_batch (the micro-batcher's entry point) under writes."""
        index = _build(shards)
        queries = [self.PROBE, "{__live__, payload}"]
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    probe_hits, payload_hits = index.query_batch(queries)
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"batch raised: {exc!r}")
                    return
                # Both answers come from one read-locked pass, so they
                # must agree with each other exactly.
                if probe_hits != payload_hits:
                    failures.append(
                        f"inconsistent batch: {probe_hits!r} "
                        f"vs {payload_hits!r}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(10):
                index.insert(f"b{i}", "{__live__, payload}")
            for i in range(0, 10, 2):
                index.delete(f"b{i}")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not failures, failures[:3]
        assert index.query(self.PROBE) == [f"b{i}" for i in
                                           range(1, 10, 2)]
        index.close()
