"""Bulk load + online updates interplay.

A bulk-loaded index that then takes inserts, deletes, and a compaction
must converge to *exactly* the store a fresh build of the final record
set produces -- entry-for-entry byte equivalence on both disk backends.
This pins the run-merge builder, the incremental writer, and the
compactor to one canonical on-disk representation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.shard import ShardedIndex
from repro.storage import open_store

from ..conftest import random_tree


def _base_records(n: int = 30) -> list:
    rng = random.Random(42)
    atoms = [f"a{i}" for i in range(8)]
    return [(f"base{i:02d}", random_tree(rng, atoms)) for i in range(n)]


def _extra_records(n: int = 6) -> list:
    rng = random.Random(43)
    atoms = [f"a{i}" for i in range(8)]
    return [(f"new{i}", random_tree(rng, atoms)) for i in range(n)]


DELETED = ("base03", "base11", "base27", "new2")


def _final_records() -> list:
    """The record set (in surviving-ordinal order) after the updates."""
    survivors = [(key, tree) for key, tree in _base_records()
                 if key not in DELETED]
    survivors += [(key, tree) for key, tree in _extra_records()
                  if key not in DELETED]
    return survivors


def _store_contents(storage: str, path: str) -> dict[bytes, bytes]:
    store = open_store(storage, path)
    try:
        return dict(store.items())
    finally:
        store.close()


@pytest.mark.parametrize("storage", ["diskhash", "btree"])
class TestBulkloadThenUpdates:
    def test_compacted_store_byte_equivalent_to_fresh_build(
            self, storage, tmp_path) -> None:
        mutated_path = str(tmp_path / "mutated.idx")
        compacted_path = str(tmp_path / "compacted.idx")
        fresh_path = str(tmp_path / "fresh.idx")

        # Small budget so the bulk load exercises real run merging.
        index = NestedSetIndex.build_external(
            _base_records(), storage=storage, path=mutated_path,
            memory_budget=40)
        for key, tree in _extra_records():
            index.insert(key, tree)
        for key in DELETED:
            assert index.delete(key)
        index.compact(storage=storage, path=compacted_path)
        index.close()

        NestedSetIndex.build(_final_records(), storage=storage,
                             path=fresh_path).close()

        assert _store_contents(storage, compacted_path) == \
            _store_contents(storage, fresh_path)

    def test_queries_agree_before_compaction(self, storage,
                                             tmp_path) -> None:
        # Even pre-compaction (tombstones still in place) the bulk-loaded
        # + updated index answers exactly like a fresh build.
        bulk = NestedSetIndex.build_external(
            _base_records(), storage=storage,
            path=str(tmp_path / "bulk.idx"), memory_budget=40)
        for key, tree in _extra_records():
            bulk.insert(key, tree)
        for key in DELETED:
            bulk.delete(key)
        fresh = NestedSetIndex.build(_final_records())

        rng = random.Random(44)
        atoms = [f"a{i}" for i in range(8)]
        for _ in range(10):
            query = random_tree(rng, atoms, allow_empty=False)
            for algorithm in ("bottomup", "topdown", "naive"):
                assert bulk.query(query, algorithm=algorithm) == \
                    fresh.query(query, algorithm=algorithm), query
        bulk.close()


class TestShardedBulkloadInterplay:
    def test_sharded_bulkload_updates_match_fresh(self, tmp_path) -> None:
        sharded = NestedSetIndex.build_external(
            _base_records(), shards=3, memory_budget=40,
            storage="diskhash", path=str(tmp_path / "s.idx"))
        assert isinstance(sharded, ShardedIndex)
        for key, tree in _extra_records():
            sharded.insert(key, tree)
        for key in DELETED:
            assert sharded.delete(key)
        sharded.compact(storage="diskhash",
                        path=str(tmp_path / "s2.idx"))
        fresh = NestedSetIndex.build(_final_records())

        rng = random.Random(45)
        atoms = [f"a{i}" for i in range(8)]
        for _ in range(10):
            query = random_tree(rng, atoms, allow_empty=False)
            assert sharded.query(query) == fresh.query(query), query
        assert sorted(key for key, _t in sharded.records()) == \
            sorted(key for key, _t in fresh.records())
        sharded.close()
