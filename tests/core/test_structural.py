"""Tests for the shared structural match conditions."""

from __future__ import annotations

import pytest

from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.postings import PostingList
from repro.core.structural import (
    Frontier,
    _merge_intervals,
    filter_candidates,
    frontier_of,
    injective_cover,
    prefilter_survivors,
)

N = NestedSet


@pytest.fixture
def index() -> InvertedFile:
    # root {t} -> child {m} -> grandchild {b}; second child {m2}
    tree = N(["t"], [N(["m"], [N(["b"])]), N(["m2"])])
    return InvertedFile.build([("r", tree)])


class TestInjectiveCover:
    def test_simple_bijection(self) -> None:
        assert injective_cover([{1}, {2}], (1, 2))

    def test_contention_resolved_by_augmenting(self) -> None:
        # set A fits child 1 or 2; set B only fits 1: A must take 2.
        assert injective_cover([{1, 2}, {1}], (1, 2))

    def test_impossible(self) -> None:
        assert not injective_cover([{1}, {1}], (1, 2))
        assert not injective_cover([{1}, {2}], (1,))

    def test_empty_requirements(self) -> None:
        assert injective_cover([], (1, 2))
        assert injective_cover([], ())


class TestFilterCandidates:
    def test_subset_hom(self, index) -> None:
        cand = PostingList([(0, (1, 3)), (1, (2,))])
        out = filter_candidates(cand, [{1}], index, QuerySpec())
        assert out.heads() == {0}

    def test_equality_child_count(self, index) -> None:
        cand = PostingList([(0, (1, 3)), (1, (2,))])
        spec = QuerySpec(join="equality")
        out = filter_candidates(cand, [{1}], index, spec)
        assert out.heads() == set()  # node 0 has 2 children, query has 1
        out2 = filter_candidates(cand, [{2}], index, spec)
        assert out2.heads() == {1}

    def test_superset_coverage(self, index) -> None:
        cand = PostingList([(0, (1, 3))])
        spec = QuerySpec(join="superset")
        # all of node 0's children (1 and 3) must be covered
        assert filter_candidates(cand, [{1}], index, spec).heads() == set()
        assert filter_candidates(cand, [{1}, {3}], index,
                                 spec).heads() == {0}

    def test_superset_leafless_candidate_with_children(self, index) -> None:
        cand = PostingList([(1, (2,))])
        spec = QuerySpec(join="superset")
        assert filter_candidates(cand, [], index, spec).heads() == set()

    def test_homeo_uses_descendants(self, index) -> None:
        # node 0's subtree spans ids (0, 3]; node 2 is a grandchild.
        cand = PostingList([(0, (1, 3))])
        spec = QuerySpec(semantics="homeo")
        assert filter_candidates(cand, [{2}], index, spec).heads() == {0}
        # under hom, the grandchild does not satisfy a child edge
        assert filter_candidates(cand, [{2}], index,
                                 QuerySpec()).heads() == set()

    def test_iso_requires_injective(self, index) -> None:
        cand = PostingList([(0, (1, 3))])
        spec = QuerySpec(semantics="iso")
        assert filter_candidates(cand, [{1}, {1}], index,
                                 spec).heads() == set()
        assert filter_candidates(cand, [{1}, {3}], index,
                                 spec).heads() == {0}


class TestPrefilterAndFrontier:
    def test_prefilter_hom(self, index) -> None:
        survivors = PostingList([(0, (1, 3)), (1, (2,))])
        out = prefilter_survivors(survivors, {2}, index, QuerySpec())
        assert out.heads() == {1}

    def test_prefilter_homeo(self, index) -> None:
        survivors = PostingList([(0, (1, 3))])
        out = prefilter_survivors(survivors, {2}, index,
                                  QuerySpec(semantics="homeo"))
        assert out.heads() == {0}

    def test_frontier_hom_restrict(self, index) -> None:
        survivors = PostingList([(0, (1, 3))])
        frontier = frontier_of(survivors, index, QuerySpec())
        cand = PostingList([(1, (2,)), (2, ()), (3, ())])
        assert frontier.restrict(cand).heads() == {1, 3}

    def test_frontier_homeo_restrict(self, index) -> None:
        survivors = PostingList([(0, (1, 3))])
        frontier = frontier_of(survivors, index,
                               QuerySpec(semantics="homeo"))
        cand = PostingList([(0, ()), (1, ()), (2, ()), (3, ())])
        # descendants of node 0: ids in (0, 3]
        assert frontier.restrict(cand).heads() == {1, 2, 3}


class TestMergeIntervals:
    def test_disjoint(self) -> None:
        assert _merge_intervals([(5, 8), (0, 3)]) == [(0, 3), (5, 8)]

    def test_nested(self) -> None:
        assert _merge_intervals([(0, 10), (2, 5)]) == [(0, 10)]

    def test_adjacent_halfopen(self) -> None:
        assert _merge_intervals([(0, 5), (5, 9)]) == [(0, 9)]

    def test_empty(self) -> None:
        assert _merge_intervals([]) == []

    def test_frontier_interval_membership(self) -> None:
        frontier = Frontier(intervals=[(0, 3), (10, 12)])
        cand = PostingList([(0, ()), (1, ()), (3, ()), (4, ()),
                            (11, ()), (13, ())])
        # (start, end] semantics: start itself excluded
        assert frontier.restrict(cand).heads() == {1, 3, 11}
