"""Tests for batch evaluation with shared-subquery memoization."""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchEvaluator, batch_query
from repro.core.bottomup import bottomup_match_nodes
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from tests.conftest import random_tree

N = NestedSet


@pytest.fixture
def index(small_corpus) -> InvertedFile:
    return InvertedFile.build(small_corpus)


class TestExactness:
    @pytest.mark.parametrize("spec", [
        QuerySpec(),
        QuerySpec(semantics="iso"),
        QuerySpec(semantics="homeo"),
        QuerySpec(join="equality"),
        QuerySpec(join="superset"),
        QuerySpec(join="overlap", epsilon=2),
    ], ids=lambda s: f"{s.semantics}-{s.join}")
    def test_equals_plain_bottomup(self, small_corpus, index, spec) -> None:
        evaluator = BatchEvaluator(index, spec)
        rng = random.Random(str(spec) + "batch")
        atoms = [f"a{i}" for i in range(12)]
        for _ in range(40):
            query = random_tree(rng, atoms)
            expected = set(bottomup_match_nodes(query, index, spec))
            assert set(evaluator.match_nodes(query)) == expected

    def test_batch_query_helper(self, small_corpus, index) -> None:
        queries = [tree for _key, tree in small_corpus[:8]]
        results = batch_query(index, queries)
        for (key, _tree), result in zip(small_corpus[:8], results):
            assert key in result


class TestSharing:
    def test_shared_subtrees_evaluated_once(self, index) -> None:
        shared = N(["a1", "a2"])
        queries = [N(["a3"], [shared]), N(["a4"], [shared]),
                   N(["a5"], [shared, N(["a6"])])]
        evaluator = BatchEvaluator(index)
        evaluator.query_all(queries)
        # shared appears in 3 queries but only one evaluation.
        assert evaluator.subqueries_reused >= 2
        assert evaluator.memo_size == evaluator.subqueries_evaluated

    def test_identical_queries_fully_reused(self, index,
                                            small_corpus) -> None:
        query = small_corpus[0][1]
        evaluator = BatchEvaluator(index)
        first = evaluator.query(query)
        evaluated = evaluator.subqueries_evaluated
        second = evaluator.query(query)
        assert first == second
        assert evaluator.subqueries_evaluated == evaluated  # all memoized

    def test_structural_equality_drives_sharing(self, index) -> None:
        # Distinct objects, equal values: the memo must hit.
        evaluator = BatchEvaluator(index)
        evaluator.query(N(["a7"], [N(["a1", "a2"])]))
        count = evaluator.subqueries_evaluated
        evaluator.query(N(["a8"], [N(["a2", "a1"])]))  # same child value
        assert evaluator.subqueries_evaluated == count + 1  # only the root

    def test_clear(self, index) -> None:
        evaluator = BatchEvaluator(index)
        evaluator.query(N(["a1"]))
        assert evaluator.memo_size > 0
        evaluator.clear()
        assert evaluator.memo_size == 0
