"""Tests for segmented posting lists and segment-skipping intersection."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import generate_dataset
from repro.core.engine import NestedSetIndex
from repro.core.invfile import InvertedFile
from repro.core.model import NestedSet
from repro.core.postings import PostingList, intersect
from repro.core.segments import (
    FORMAT_PLAIN,
    FORMAT_SEGMENTED,
    SegmentInfo,
    decode_header,
    decode_plain,
    encode_header,
    encode_plain,
    encode_segmented,
    overlapping_segments,
    total_of,
    value_format,
)
from repro.core.updates import IndexWriter
from repro.data.queries import make_benchmark_queries

N = NestedSet


def postings_of(n: int, stride: int = 3) -> list:
    return [(i * stride, (i * stride + 1,)) for i in range(n)]


class TestCodec:
    def test_plain_roundtrip(self) -> None:
        entries = postings_of(10)
        raw = encode_plain(entries)
        assert value_format(raw) == FORMAT_PLAIN
        assert decode_plain(raw) == entries
        assert total_of(raw) == 10

    def test_segmented_roundtrip(self) -> None:
        entries = postings_of(25)
        header, blobs = encode_segmented(entries, 10)
        assert value_format(header) == FORMAT_SEGMENTED
        decoded = decode_header(header)
        assert decoded.total == 25
        assert len(decoded.segments) == 3
        assert len(blobs) == 3
        rebuilt = []
        for blob in blobs:
            rebuilt.extend(PostingList.decode(blob).entries)
        assert rebuilt == entries
        assert total_of(header) == 25

    def test_segment_ranges(self) -> None:
        entries = postings_of(20)  # heads 0, 3, ..., 57
        header, _blobs = encode_segmented(entries, 10)
        decoded = decode_header(header)
        assert decoded.segments[0] == SegmentInfo(0, 27)
        assert decoded.segments[1] == SegmentInfo(30, 57)

    def test_encode_header_roundtrip(self) -> None:
        infos = [SegmentInfo(5, 9), SegmentInfo(12, 40)]
        decoded = decode_header(encode_header(17, infos))
        assert decoded == (17, tuple(infos))

    def test_overlapping_segments(self) -> None:
        header = decode_header(encode_header(
            30, [SegmentInfo(0, 9), SegmentInfo(10, 19),
                 SegmentInfo(25, 40)]))
        assert overlapping_segments(header, 5, 12) == [0, 1]
        assert overlapping_segments(header, 20, 24) == []
        assert overlapping_segments(header, 40, 99) == [2]
        assert overlapping_segments(header, 0, 99) == [0, 1, 2]

    def test_bad_inputs(self) -> None:
        with pytest.raises(ValueError):
            encode_segmented(postings_of(5), 0)
        with pytest.raises(ValueError):
            value_format(b"")
        with pytest.raises(ValueError):
            decode_header(encode_plain(postings_of(2)))
        with pytest.raises(ValueError):
            total_of(bytes([99]))

    @given(st.lists(st.integers(0, 10 ** 6), min_size=1, unique=True),
           st.integers(1, 50))
    @settings(max_examples=100)
    def test_roundtrip_property(self, heads: list[int],
                                segment_size: int) -> None:
        entries = [(h, ()) for h in sorted(heads)]
        header, blobs = encode_segmented(entries, segment_size)
        decoded = decode_header(header)
        assert decoded.total == len(entries)
        rebuilt = []
        for blob in blobs:
            rebuilt.extend(PostingList.decode(blob).entries)
        assert rebuilt == entries


class TestSegmentedIndex:
    @pytest.fixture(scope="class")
    def records(self):
        return list(generate_dataset("zipf-wide", 800, seed=2, theta=0.9))

    @pytest.fixture(scope="class")
    def plain_index(self, records) -> InvertedFile:
        return InvertedFile.build(records)

    @pytest.fixture(scope="class")
    def seg_index(self, records) -> InvertedFile:
        return InvertedFile.build(records, segment_size=64)

    def test_some_lists_are_segmented(self, seg_index) -> None:
        hottest = seg_index.frequencies()[0][0]
        raw = seg_index.store.get(b"A:" + f"s:{hottest}".encode())
        assert value_format(raw) == FORMAT_SEGMENTED

    def test_postings_identical(self, records, plain_index,
                                seg_index) -> None:
        for atom, _df in seg_index.frequencies()[:50]:
            assert seg_index.postings(atom) == plain_index.postings(atom)

    def test_list_length_without_decode(self, plain_index,
                                        seg_index) -> None:
        for atom, df in seg_index.frequencies()[:20]:
            assert seg_index.list_length(atom) == df
            assert plain_index.list_length(atom) == df
        assert seg_index.list_length("__absent__") == 0

    def test_intersect_atoms_equals_plain_intersection(
            self, seg_index) -> None:
        frequencies = seg_index.frequencies()
        rng = random.Random(9)
        atoms = [atom for atom, _df in frequencies[:200]]
        for _ in range(60):
            chosen = rng.sample(atoms, rng.randint(2, 4))
            expect = intersect([seg_index.postings(a) for a in chosen])
            assert seg_index.intersect_atoms(chosen) == expect

    def test_segment_skipping_happens(self, records, seg_index) -> None:
        seg_index.reset_stats()
        workload = make_benchmark_queries(records, 30, seed=2)
        from repro.core.bottomup import bottomup_match_nodes
        from repro.core.topdown import topdown_match_nodes
        for bench in workload:
            topdown_match_nodes(bench.query, seg_index)
        assert seg_index.stats.segments_skipped > 0

    def test_query_results_identical(self, records, plain_index,
                                     seg_index) -> None:
        from repro.core.topdown import topdown_match_nodes
        from repro.core.bottomup import bottomup_match_nodes
        workload = make_benchmark_queries(records, 30, seed=3)
        for bench in workload:
            expect = plain_index.heads_to_keys(
                topdown_match_nodes(bench.query, plain_index))
            assert seg_index.heads_to_keys(
                topdown_match_nodes(bench.query, seg_index)) == expect
            assert seg_index.heads_to_keys(
                bottomup_match_nodes(bench.query, seg_index)) == expect

    def test_postings_overlapping_superset_of_range(self,
                                                    seg_index) -> None:
        atom, _df = seg_index.frequencies()[0]
        full = seg_index.postings(atom)
        lo = full.entries[len(full) // 3][0]
        hi = full.entries[2 * len(full) // 3][0]
        partial = seg_index.postings_overlapping(atom, lo, hi)
        in_range = [(p, c) for p, c in full if lo <= p <= hi]
        partial_heads = partial.heads()
        assert all(p in partial_heads for p, _c in in_range)
        assert len(partial) <= len(full)

    def test_disk_roundtrip_with_segments(self, tmp_path, records) -> None:
        path = str(tmp_path / "seg.idx")
        built = InvertedFile.build(records[:200], storage="diskhash",
                                   path=path, segment_size=32)
        hottest = built.frequencies()[0][0]
        expect = built.postings(hottest)
        built.close()
        reopened = InvertedFile.open("diskhash", path)
        assert reopened.segment_size == 32
        assert reopened.postings(hottest) == expect
        reopened.close()


class TestSegmentedUpdates:
    def test_insert_grows_plain_into_segments(self) -> None:
        records = [(f"r{i}", N(["hot", f"u{i}"])) for i in range(10)]
        index = InvertedFile.build(records, segment_size=8)
        writer = IndexWriter(index)
        for i in range(10):
            writer.insert(f"x{i}", N(["hot", f"v{i}"]))
        raw = index.store.get(b"A:s:hot")
        assert value_format(raw) == FORMAT_SEGMENTED
        assert len(index.postings("hot")) == 20

    def test_insert_appends_to_segmented_tail(self) -> None:
        records = [(f"r{i}", N(["hot"])) for i in range(30)]
        index = InvertedFile.build(records, segment_size=8)
        writer = IndexWriter(index)
        writer.insert("fresh", N(["hot", "rare"]))
        full = index.postings("hot")
        assert len(full) == 31
        heads = [p for p, _c in full]
        assert heads == sorted(heads)
        header = decode_header(index.store.get(b"A:s:hot"))
        assert header.total == 31

    def test_engine_segment_option(self) -> None:
        records = list(generate_dataset("dblp", 300, seed=1))
        index = NestedSetIndex.build(records, segment_size=64)
        plain = NestedSetIndex.build(records)
        query = records[5][1]
        assert index.query(query) == plain.query(query)
        assert index.inverted_file.segment_size == 64
