"""Cross-algorithm equivalence over randomized collections.

Every algorithm implements the same containment semantics, so for each
valid semantics x join combination the index-based algorithms and the
naive reference scan must return identical results through the shared
execution pipeline.  The paper-literal top-down variant over-approximates
on branching queries (it checks path-consistent containment), so its row
of the matrix runs on path-shaped queries, where it is exact.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.planner import STRATEGIES

from ..conftest import random_tree

#: Every semantics x join combination QuerySpec accepts (non-subset
#: joins require hom semantics).
VALID_COMBOS = [
    ("hom", "subset"),
    ("hom", "equality"),
    ("hom", "superset"),
    ("hom", "overlap"),
    ("iso", "subset"),
    ("homeo", "subset"),
]

#: The paper-literal variant rejects iso semantics and superset joins;
#: on path queries it is exact for subset joins and a sound
#: over-approximation for the others.
PAPER_EXACT_COMBOS = [("hom", "subset"), ("homeo", "subset")]
PAPER_SOUND_COMBOS = [("hom", "equality"), ("hom", "overlap")]


def _corpus(seed: int, n: int = 40) -> list:
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    return [(f"r{i:02d}", random_tree(rng, atoms)) for i in range(n)]


def _queries(seed: int, n: int = 12, *, max_children: int = 2) -> list:
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    return [random_tree(rng, atoms, max_children=max_children,
                        allow_empty=False) for _ in range(n)]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("semantics,join", VALID_COMBOS)
class TestFullMatrix:
    def test_algorithms_agree(self, seed, semantics, join) -> None:
        index = NestedSetIndex.build(_corpus(seed))
        for mode in ("root", "anywhere"):
            for query in _queries(seed + 100):
                expected = index.query(query, algorithm="naive",
                                       semantics=semantics, join=join,
                                       mode=mode)
                for algorithm in ("bottomup", "topdown"):
                    got = index.query(query, algorithm=algorithm,
                                      semantics=semantics, join=join,
                                      mode=mode)
                    assert got == expected, \
                        (algorithm, semantics, join, mode, query)


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestPaperVariantOnPathQueries:
    @pytest.mark.parametrize("semantics,join", PAPER_EXACT_COMBOS)
    def test_exact_on_paths(self, seed, semantics, join) -> None:
        index = NestedSetIndex.build(_corpus(seed))
        for query in _queries(seed + 200, max_children=1):
            expected = index.query(query, algorithm="bottomup",
                                   semantics=semantics, join=join)
            got = index.query(query, algorithm="topdown-paper",
                              semantics=semantics, join=join)
            assert got == expected, (semantics, join, query)

    @pytest.mark.parametrize("semantics,join", PAPER_SOUND_COMBOS)
    def test_sound_on_paths(self, seed, semantics, join) -> None:
        # Path-consistent containment may add false positives under
        # equality/overlap joins but must never miss a true match.
        index = NestedSetIndex.build(_corpus(seed))
        for query in _queries(seed + 200, max_children=1):
            expected = set(index.query(query, algorithm="bottomup",
                                       semantics=semantics, join=join))
            got = set(index.query(query, algorithm="topdown-paper",
                                  semantics=semantics, join=join))
            assert got >= expected, (semantics, join, query)


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("semantics,join", VALID_COMBOS)
class TestFormatEquivalence:
    """Blocked and legacy physical layouts must be query-indistinguishable.

    ``block_size=4`` forces multi-block lists even on the small corpus, so
    the galloping/skip machinery actually runs; ``block_size=0`` is the
    plain pre-block format.
    """

    def test_layouts_agree(self, seed, semantics, join) -> None:
        corpus = _corpus(seed)
        legacy = NestedSetIndex.build(corpus, block_size=0)
        blocked = NestedSetIndex.build(corpus, block_size=4)
        for mode in ("root", "anywhere"):
            for query in _queries(seed + 400, n=8):
                for algorithm in ("bottomup", "topdown"):
                    expected = legacy.query(query, algorithm=algorithm,
                                            semantics=semantics, join=join,
                                            mode=mode)
                    got = blocked.query(query, algorithm=algorithm,
                                        semantics=semantics, join=join,
                                        mode=mode)
                    assert got == expected, \
                        (algorithm, semantics, join, mode, query)


class TestLegacyIndexCompatibility:
    def test_legacy_disk_index_opens_without_rebuild(self, tmp_path) -> None:
        # An index written with the pre-block codec (block_size=0) must
        # reopen and answer queries byte-compatibly -- no rebuild step.
        corpus = _corpus(5)
        path = str(tmp_path / "legacy.ix")
        built = NestedSetIndex.build(corpus, storage="diskhash", path=path,
                                     block_size=0)
        queries = _queries(505, n=6)
        expected = [built.query(query) for query in queries]
        built.close()

        reopened = NestedSetIndex.open("diskhash", path)
        assert reopened._ifile.block_size == 0
        assert [reopened.query(query) for query in queries] == expected
        reopened.close()

    def test_new_builds_default_to_blocked(self) -> None:
        index = NestedSetIndex.build(_corpus(6))
        assert index._ifile.block_size > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestPlannerOrderInvariance:
    def test_all_strategies_agree(self, seed) -> None:
        index = NestedSetIndex.build(_corpus(seed))
        for query in _queries(seed + 300):
            baseline = index.query(query, algorithm="topdown")
            for strategy in STRATEGIES:
                planned = index.query(query, algorithm="topdown",
                                      planner=strategy)
                assert planned == baseline, (strategy, query)
