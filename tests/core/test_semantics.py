"""Tests for the reference containment checkers (the oracles)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import NestedSet
from repro.core.semantics import (
    contains,
    contains_anywhere,
    equality_matches,
    hom_contains,
    homeo_contains,
    iso_contains,
    overlap_matches,
    superset_matches,
)

N = NestedSet  # terse tree construction in the cases below


def small_trees() -> st.SearchStrategy[NestedSet]:
    atoms = st.sampled_from(["a", "b", "c", "d"])
    return st.recursive(
        st.builds(lambda a: N(a), st.lists(atoms, max_size=3)),
        lambda kids: st.builds(lambda a, c: N(a, c),
                               st.lists(atoms, max_size=2),
                               st.lists(kids, max_size=2)),
        max_leaves=8)


class TestHom:
    def test_empty_query_contained_everywhere(self) -> None:
        assert hom_contains(N(["a"]), N())
        assert hom_contains(N(), N())

    def test_leaf_subset(self) -> None:
        assert hom_contains(N(["a", "b"]), N(["a"]))
        assert not hom_contains(N(["a"]), N(["a", "b"]))

    def test_child_edge_required(self) -> None:
        data = N(["a"], [N(["b"])])
        assert hom_contains(data, N([], [N(["b"])]))
        # grandchild does not satisfy a child edge under hom
        deep = N(["a"], [N([], [N(["b"])])])
        assert not hom_contains(deep, N([], [N(["b"])]))

    def test_two_query_children_may_share_one_data_child(self) -> None:
        # Homomorphism is not injective: both query children map to the
        # single data child containing {a, b}.
        data = N([], [N(["a", "b"])])
        query = N([], [N(["a"]), N(["b"])])
        assert hom_contains(data, query)

    def test_branching_consistency(self) -> None:
        # The path-mixing case of DESIGN.md: no single data child covers
        # both query grandchildren, so hom containment must fail.
        data = N([], [N(["l"], [N(["x"])]), N(["l"], [N(["y"])])])
        query = N([], [N(["l"], [N(["x"]), N(["y"])])])
        assert not hom_contains(data, query)

    def test_paper_running_example(self, sue: NestedSet, tim: NestedSet,
                                   paper_query: NestedSet) -> None:
        assert hom_contains(tim, paper_query)
        assert not hom_contains(sue, paper_query)


class TestIso:
    def test_injectivity_enforced(self) -> None:
        data = N([], [N(["a", "b"])])
        query = N([], [N(["a"]), N(["b"])])
        assert hom_contains(data, query)
        assert not iso_contains(data, query)

    def test_distinct_witnesses_allow_iso(self) -> None:
        data = N([], [N(["a"]), N(["b"])])
        query = N([], [N(["a"]), N(["b"])])
        assert iso_contains(data, query)

    def test_matching_requires_augmenting_paths(self) -> None:
        # Child q1 fits c1 or c2; q2 only fits c1: matching must re-route.
        c1 = N(["a", "b"])
        c2 = N(["a"])
        data = N([], [c1, c2])
        query = N([], [N(["a"]), N(["b"])])
        assert iso_contains(data, query)

    def test_figure2_tb_case(self, tim: NestedSet) -> None:
        # {UK, {A, motorbike}} is iso-contained in Tim's record.
        query = N(["USA"], [N(["UK"], [N(["A", "motorbike"])])])
        assert iso_contains(tim, query)


class TestHomeo:
    def test_descendant_edges_allowed(self) -> None:
        deep = N(["a"], [N([], [N(["b"])])])
        query = N([], [N(["b"])])
        assert not hom_contains(deep, query)
        assert homeo_contains(deep, query)

    def test_leaf_edges_stay_parent_child(self) -> None:
        # Footnote 4: leaves of a query node must be direct leaf children
        # of the matched node.
        deep = N([], [N([], [N(["b"])])])
        query = N(["b"])
        assert not homeo_contains(deep, query)

    def test_figure2_tc_case(self) -> None:
        # Query skipping one nesting level: homeo yes, hom no.
        data = N(["x"], [N(["mid"], [N(["y"])])])
        query = N(["x"], [N(["y"])])
        assert homeo_contains(data, query)
        assert not hom_contains(data, query)


class TestJoins:
    def test_equality_is_structural(self) -> None:
        assert equality_matches(N(["a"], [N(["b"])]), N(["a"], [N(["b"])]))
        assert not equality_matches(N(["a"]), N(["a", "b"]))

    def test_superset_is_reversed_hom(self) -> None:
        big = N(["a", "b"], [N(["c"])])
        small = N(["a"], [N(["c"])])
        assert superset_matches(data=small, query=big)
        assert not superset_matches(data=big, query=small)

    def test_overlap_epsilon(self) -> None:
        # Every matched pair must share >= epsilon leaves: the root pair
        # shares {a, b} but the child pair shares only {c}, so epsilon=2
        # already fails.
        data = N(["a", "b", "x"], [N(["c", "d", "y"])])
        query = N(["a", "b", "q"], [N(["c", "z"])])
        assert overlap_matches(data, query, epsilon=1)
        assert not overlap_matches(data, query, epsilon=2)
        flat_data = N(["a", "b", "x"])
        flat_query = N(["a", "b", "q"])
        assert overlap_matches(flat_data, flat_query, epsilon=2)
        assert not overlap_matches(flat_data, flat_query, epsilon=3)

    def test_overlap_needs_shared_leaf_per_level(self) -> None:
        data = N(["a"], [N(["c"])])
        query = N(["a"], [N(["z"])])
        assert not overlap_matches(data, query, epsilon=1)

    def test_overlap_bad_epsilon(self) -> None:
        with pytest.raises(ValueError):
            overlap_matches(N(["a"]), N(["a"]), epsilon=0)


class TestDispatch:
    def test_contains_names(self, tim: NestedSet,
                            paper_query: NestedSet) -> None:
        for semantics in ("hom", "iso", "homeo"):
            assert contains(tim, paper_query, semantics)
        with pytest.raises(ValueError):
            contains(tim, paper_query, "telepathy")

    def test_contains_anywhere(self) -> None:
        data = N(["top"], [N(["a"], [N(["b"])])])
        query = N(["a"], [N(["b"])])
        assert not contains(data, query)
        assert contains_anywhere(data, query)


class TestInclusionChain:
    """iso ⊆ hom ⊆ homeo (Section 2: the inclusions are strict)."""

    @settings(max_examples=150)
    @given(small_trees(), small_trees())
    def test_semantics_inclusions(self, data: NestedSet,
                                  query: NestedSet) -> None:
        if iso_contains(data, query):
            assert hom_contains(data, query)
        if hom_contains(data, query):
            assert homeo_contains(data, query)

    @settings(max_examples=100)
    @given(small_trees())
    def test_reflexivity(self, tree: NestedSet) -> None:
        assert iso_contains(tree, tree)
        assert hom_contains(tree, tree)
        assert homeo_contains(tree, tree)
        assert equality_matches(tree, tree)

    @settings(max_examples=100)
    @given(small_trees(), small_trees())
    def test_superset_subset_duality(self, data: NestedSet,
                                     query: NestedSet) -> None:
        assert superset_matches(data, query) == hom_contains(query, data)

    @settings(max_examples=100)
    @given(small_trees())
    def test_alien_leaf_kills_containment(self, tree: NestedSet) -> None:
        distorted = tree.with_atom("__absent__")
        assert not hom_contains(tree, distorted)
        assert not homeo_contains(tree, distorted)

    def test_transitivity_spot_check(self) -> None:
        rng = random.Random(4)
        atoms = ["a", "b", "c", "d", "e"]

        def tree(depth: int = 0) -> NestedSet:
            node_atoms = rng.sample(atoms, rng.randint(1, 3))
            kids = [tree(depth + 1)
                    for _ in range(rng.randint(0, 2))] if depth < 2 else []
            return N(node_atoms, kids)

        hits = 0
        for _ in range(300):
            a, b, c = tree(), tree(), tree()
            if hom_contains(b, a) and hom_contains(c, b):
                hits += 1
                assert hom_contains(c, a)
        assert hits > 0  # the property was actually exercised
