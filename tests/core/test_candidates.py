"""Tests for per-join-type candidate generation (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.candidates import node_candidates
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet

N = NestedSet


@pytest.fixture
def index() -> InvertedFile:
    # One record with distinctive leaf-count structure:
    #   root {a, b}            (id 0, 2 leaves)
    #     child {a}            (1 leaf)
    #     child {a, b, c}      (3 leaves)
    #     child {}             (0 leaves)
    return InvertedFile.build([
        ("r", N(["a", "b"],
                [N(["a"]), N(["a", "b", "c"]), N([], [N(["z"])])])),
    ])


def heads_by_leafcount(index: InvertedFile, heads: set[int]) -> set[int]:
    return {index.leaf_count(h) for h in heads}


class TestSubset:
    def test_intersection(self, index: InvertedFile) -> None:
        cand = node_candidates(N(["a", "b"]), index, QuerySpec())
        # nodes containing both a and b: the root and the {a,b,c} child
        assert heads_by_leafcount(index, cand.heads()) == {2, 3}

    def test_empty_atoms_all_nodes(self, index: InvertedFile) -> None:
        cand = node_candidates(N(), index, QuerySpec())
        assert len(cand) == index.n_nodes

    def test_absent_atom(self, index: InvertedFile) -> None:
        cand = node_candidates(N(["nope"]), index, QuerySpec())
        assert not cand


class TestEquality:
    def test_leaf_count_filter(self, index: InvertedFile) -> None:
        spec = QuerySpec(join="equality")
        cand = node_candidates(N(["a", "b"]), index, spec)
        assert heads_by_leafcount(index, cand.heads()) == {2}

    def test_empty_atoms_zero_leaf_nodes(self, index: InvertedFile) -> None:
        spec = QuerySpec(join="equality")
        cand = node_candidates(N(), index, spec)
        assert heads_by_leafcount(index, cand.heads()) == {0}


class TestSuperset:
    def test_multiplicity_equals_leafcount(self, index: InvertedFile) -> None:
        spec = QuerySpec(join="superset")
        # Query leaves {a, b}: candidates must have ALL their leaves
        # inside {a, b} -> the {a} child (1 of 1), the root (2 of 2),
        # and the zero-leaf child; NOT the {a,b,c} child (2 of 3).
        cand = node_candidates(N(["a", "b"]), index, spec)
        assert heads_by_leafcount(index, cand.heads()) == {0, 1, 2}

    def test_zero_leaf_nodes_always_candidates(self, index) -> None:
        spec = QuerySpec(join="superset")
        cand = node_candidates(N(["zzz"]), index, spec)
        assert heads_by_leafcount(index, cand.heads()) == {0}

    def test_empty_query_node(self, index: InvertedFile) -> None:
        spec = QuerySpec(join="superset")
        cand = node_candidates(N(), index, spec)
        assert heads_by_leafcount(index, cand.heads()) == {0}


class TestOverlap:
    def test_epsilon_threshold(self, index: InvertedFile) -> None:
        cand1 = node_candidates(N(["a", "b", "q"]), index,
                                QuerySpec(join="overlap", epsilon=1))
        cand2 = node_candidates(N(["a", "b", "q"]), index,
                                QuerySpec(join="overlap", epsilon=2))
        # epsilon=1: every node sharing a or b; epsilon=2: nodes sharing two
        assert heads_by_leafcount(index, cand1.heads()) == {1, 2, 3}
        assert heads_by_leafcount(index, cand2.heads()) == {2, 3}

    def test_no_atoms_no_candidates(self, index: InvertedFile) -> None:
        cand = node_candidates(N(), index, QuerySpec(join="overlap"))
        assert not cand

    def test_results_sorted(self, index: InvertedFile) -> None:
        cand = node_candidates(N(["a"]), index,
                               QuerySpec(join="overlap", epsilon=1))
        heads = [p for p, _ in cand]
        assert heads == sorted(heads)
