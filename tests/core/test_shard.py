"""Sharded index: equivalence with the monolithic engine, persistence,
routing, merge semantics, and the fan-out executor."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.exec.observer import MergedExplainResult
from repro.core.parallel import ShardExecutor
from repro.core.shard import (
    MANIFEST_KEY,
    HashShardPolicy,
    RoundRobinShardPolicy,
    ShardedIndex,
    ShardError,
    make_policy,
    read_manifest,
    register_policy,
)
from repro.storage import MemoryKVStore, NamespacedStore

from ..conftest import random_tree
from .test_equivalence_matrix import VALID_COMBOS, _corpus, _queries


def _build_pair(seed: int, shards: int, workers: int):
    records = _corpus(seed)
    mono = NestedSetIndex.build(records)
    # Direct constructor so the degenerate 1-shard layout is covered too
    # (the facade returns a monolithic index for shards=1).
    sharded = ShardedIndex.build(records, shards=shards, workers=workers)
    assert isinstance(sharded, ShardedIndex)
    return mono, sharded


@pytest.mark.parametrize("shards", [1, 3, 4])
@pytest.mark.parametrize("workers", [1, 4])
class TestShardedEquivalenceMatrix:
    """The acceptance matrix: sharded == monolithic everywhere."""

    @pytest.mark.parametrize("semantics,join", VALID_COMBOS)
    def test_query_matrix(self, shards, workers, semantics, join) -> None:
        mono, sharded = _build_pair(7, shards, workers)
        for mode in ("root", "anywhere"):
            for query in _queries(107, n=6):
                expected = mono.query(query, semantics=semantics,
                                      join=join, mode=mode)
                for algorithm in ("bottomup", "topdown", "naive"):
                    got = sharded.query(query, algorithm=algorithm,
                                        semantics=semantics, join=join,
                                        mode=mode)
                    assert got == expected, \
                        (shards, workers, algorithm, semantics, join, mode)

    def test_query_batch_and_join(self, shards, workers) -> None:
        mono, sharded = _build_pair(8, shards, workers)
        queries = _queries(108, n=8)
        assert sharded.query_batch(queries) == mono.query_batch(queries)
        keyed = [(f"q{i}", query) for i, query in enumerate(queries)]
        assert sharded.containment_join(keyed) == \
            mono.containment_join(keyed)

    def test_explain_matches_query(self, shards, workers) -> None:
        mono, sharded = _build_pair(9, shards, workers)
        for query in _queries(109, n=4):
            result = sharded.explain(query, algorithm="topdown")
            assert isinstance(result, MergedExplainResult)
            assert result.matches == mono.query(query, algorithm="topdown")
            assert len(result.shards) == shards
            assert "shards]" in result.render().splitlines()[0]


class TestShardedBuildAndOpen:
    @pytest.mark.parametrize("storage", ["diskhash", "btree"])
    def test_persist_and_reopen(self, storage, tmp_path) -> None:
        records = _corpus(11)
        path = str(tmp_path / f"idx.{storage}")
        index = NestedSetIndex.build(records, shards=3, storage=storage,
                                     path=path)
        queries = _queries(111, n=5)
        expected = [index.query(query) for query in queries]
        index.close()

        reopened = NestedSetIndex.open(storage, path, workers=4)
        assert isinstance(reopened, ShardedIndex)
        assert reopened.n_shards == 3
        assert reopened.n_records == len(records)
        assert [reopened.query(query) for query in queries] == expected
        reopened.close()

    def test_monolithic_store_reopens_monolithic(self, tmp_path) -> None:
        path = str(tmp_path / "mono.idx")
        NestedSetIndex.build(_corpus(12), storage="diskhash",
                             path=path).close()
        reopened = NestedSetIndex.open("diskhash", path)
        assert isinstance(reopened, NestedSetIndex)
        reopened.close()

    def test_manifest_written(self) -> None:
        index = NestedSetIndex.build(_corpus(13), shards=4)
        assert read_manifest(index.base_store) == (4, "hash")
        assert index.base_store.get(MANIFEST_KEY) is not None

    def test_build_external_sharded(self) -> None:
        records = _corpus(14)
        mono = NestedSetIndex.build(records)
        sharded = NestedSetIndex.build_external(records, shards=3,
                                                memory_budget=50)
        assert isinstance(sharded, ShardedIndex)
        for query in _queries(114, n=6):
            assert sharded.query(query) == mono.query(query)

    def test_empty_shards_are_fine(self) -> None:
        # 2 records across 4 shards leaves some shards empty.
        index = NestedSetIndex.build([("a", "{x}"), ("b", "{y}")],
                                     shards=4)
        assert index.n_records == 2
        assert index.query("{x}") == ["a"]

    def test_invalid_shard_count(self) -> None:
        with pytest.raises(ShardError):
            ShardedIndex.build([], shards=0)


class TestRoutingAndUpdates:
    def test_insert_routes_to_owning_shard(self) -> None:
        index = NestedSetIndex.build(_corpus(15), shards=3)
        policy = HashShardPolicy()
        before = [engine.n_records for engine in index.shards]
        index.insert("fresh-key", "{a0, {a1}}")
        owner = policy.shard_of("fresh-key", 3)
        after = [engine.n_records for engine in index.shards]
        assert after[owner] == before[owner] + 1
        assert sum(after) == sum(before) + 1
        assert "fresh-key" in index.query("{a0, {a1}}")

    def test_delete_and_compact(self) -> None:
        records = _corpus(16)
        index = NestedSetIndex.build(records, shards=3)
        victim = records[0][0]
        assert index.delete(victim)
        assert not index.delete(victim)          # already tombstoned
        assert not index.delete("never-there")
        assert victim not in index.query(records[0][1])
        index.compact()
        assert index.n_records == len(records) - 1  # tombstone dropped
        assert victim not in index.query(records[0][1])

    @pytest.mark.parametrize("storage", ["diskhash", "btree"])
    def test_compact_to_disk_and_reopen(self, storage, tmp_path) -> None:
        records = _corpus(17)
        index = NestedSetIndex.build(records, shards=3, storage=storage,
                                     path=str(tmp_path / "a.idx"))
        index.delete(records[1][0])
        expected = index.query(records[2][1])
        index.compact(storage=storage, path=str(tmp_path / "b.idx"))
        assert index.query(records[2][1]) == expected
        index.close()
        reopened = NestedSetIndex.open(storage, str(tmp_path / "b.idx"))
        assert isinstance(reopened, ShardedIndex)
        assert reopened.query(records[2][1]) == expected
        reopened.close()

    def test_updates_match_monolithic(self) -> None:
        records = _corpus(18)
        mono = NestedSetIndex.build(records)
        sharded = NestedSetIndex.build(records, shards=4)
        rng = random.Random(218)
        atoms = [f"a{i}" for i in range(10)]
        for i in range(10):
            key, tree = f"new{i}", random_tree(rng, atoms)
            mono.insert(key, tree)
            sharded.insert(key, tree)
        for key, _tree in records[::5]:
            assert mono.delete(key) == sharded.delete(key)
        for query in _queries(118, n=8):
            assert sharded.query(query) == mono.query(query)


class TestPolicies:
    def test_hash_policy_is_process_stable(self) -> None:
        # crc32, not hash(): the same key must route identically in a
        # different process (PYTHONHASHSEED randomizes str hashing).
        assert HashShardPolicy().shard_of("tim", 4) == \
            HashShardPolicy().shard_of("tim", 4)
        import zlib
        assert HashShardPolicy().shard_of("tim", 4) == \
            zlib.crc32(b"tim") % 4

    def test_roundrobin_balances_and_deletes(self) -> None:
        records = [(f"r{i}", "{x}") for i in range(12)]
        index = NestedSetIndex.build(records, shards=4,
                                     shard_policy="roundrobin")
        assert [engine.n_records for engine in index.shards] == [3, 3, 3, 3]
        # Routed delete may miss under round-robin; the fallback scans.
        for key, _tree in records:
            assert index.delete(key)
        assert index.query("{x}") == []

    def test_make_policy_validation(self) -> None:
        assert isinstance(make_policy("hash"), HashShardPolicy)
        assert isinstance(make_policy("roundrobin"), RoundRobinShardPolicy)
        with pytest.raises(ShardError):
            make_policy("no-such-policy")
        with pytest.raises(ShardError):
            make_policy(object())

    def test_register_custom_policy(self) -> None:
        class FirstShardPolicy:
            name = "first-only"

            def shard_of(self, key: str, n_shards: int) -> int:
                return 0

        register_policy("first-only", FirstShardPolicy)
        try:
            index = NestedSetIndex.build(_corpus(19), shards=3,
                                         shard_policy="first-only")
            assert index.shards[0].n_records == len(_corpus(19))
            assert index.shards[1].n_records == 0
        finally:
            from repro.core.shard import POLICIES
            del POLICIES["first-only"]


class TestMergedStatistics:
    def test_counters_merge_across_shards(self) -> None:
        mono, sharded = _build_pair(20, 3, 1)
        queries = _queries(120, n=5)
        for query in queries:
            mono_ctx_result = mono.query(query)
            assert sharded.query(query) == mono_ctx_result
        merged = sharded.counters
        # one plan runs per shard per query
        assert merged.queries == len(queries) * 3
        sharded.reset_stats()
        assert sharded.counters.queries == 0

    def test_stats_shape(self) -> None:
        _mono, sharded = _build_pair(21, 3, 2)
        sharded.query(_queries(121, n=1)[0])
        stats = sharded.stats()
        assert stats["shards"]["count"] == 3
        assert stats["shards"]["policy"] == "hash"
        assert stats["shards"]["workers"] == 2
        assert stats["index"]["records"] == sharded.n_records
        assert "hit_rate" in stats["cache"]

    def test_collection_stats_match_monolithic(self) -> None:
        mono, sharded = _build_pair(22, 4, 1)
        mono_stats = mono.collection_stats()
        sharded_stats = sharded.collection_stats()
        assert sharded_stats.n_records == mono_stats.n_records
        assert sharded_stats.n_nodes == mono_stats.n_nodes
        for atom in ("a0", "a5", "a9"):
            assert sharded_stats.document_frequency(atom) == \
                mono_stats.document_frequency(atom)

    def test_frequencies_merge(self) -> None:
        mono, sharded = _build_pair(23, 3, 1)
        assert dict(sharded.frequencies()) == \
            dict(mono.inverted_file.frequencies())

    def test_match_nodes_raises(self) -> None:
        _mono, sharded = _build_pair(24, 2, 1)
        with pytest.raises(ShardError):
            sharded.match_nodes("{a0}")

    def test_self_check_agrees(self) -> None:
        _mono, sharded = _build_pair(25, 3, 1)
        for query in _queries(125, n=2):
            results = sharded.self_check(query)
            assert len(set(map(tuple, results.values()))) == 1


class TestNamespacedStore:
    def test_prefix_isolation(self) -> None:
        base = MemoryKVStore()
        a = NamespacedStore(base, b"x0:")
        b = NamespacedStore(base, b"x1:")
        a.put(b"k", b"va")
        b.put(b"k", b"vb")
        assert a.get(b"k") == b"va"
        assert b.get(b"k") == b"vb"
        assert dict(a.items()) == {b"k": b"va"}
        assert len(a) == 1 and len(base) == 2
        assert a.delete(b"k") and not a.delete(b"k")
        assert b.get(b"k") == b"vb"

    def test_close_leaves_base_open(self) -> None:
        base = MemoryKVStore()
        view = NamespacedStore(base, b"x0:")
        view.put(b"k", b"v")
        view.close()
        assert base.get(b"x0:k") == b"v"
        with pytest.raises(Exception):
            view.get(b"k")

    def test_empty_prefix_rejected(self) -> None:
        with pytest.raises(ValueError):
            NamespacedStore(MemoryKVStore(), b"")

    def test_stats_double_counted(self) -> None:
        base = MemoryKVStore()
        view = NamespacedStore(base, b"x0:")
        view.put(b"k", b"v")
        view.get(b"k")
        assert view.stats.gets == 1 and view.stats.puts == 1
        assert base.stats.gets == 1 and base.stats.puts == 1


class TestShardExecutor:
    def test_sequential_fallback(self) -> None:
        executor = ShardExecutor(max_workers=1)
        assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert executor._pool is None

    def test_parallel_preserves_order(self) -> None:
        with ShardExecutor(max_workers=4) as executor:
            assert executor.map(lambda x: x * 2, list(range(16))) == \
                [x * 2 for x in range(16)]

    def test_exceptions_propagate(self) -> None:
        def boom(x: int) -> int:
            if x == 2:
                raise RuntimeError("task failed")
            return x

        with ShardExecutor(max_workers=3) as executor:
            with pytest.raises(RuntimeError):
                executor.map(boom, [1, 2, 3])
        with pytest.raises(RuntimeError):
            ShardExecutor(max_workers=1).map(boom, [2])

    def test_invalid_workers(self) -> None:
        with pytest.raises(ValueError):
            ShardExecutor(max_workers=0)


class TestRoundRobinDeleteFallback:
    """Regression: the fallback sweep must not re-try the routed shard
    (it already missed), and must try every other shard exactly once."""

    @staticmethod
    def _instrumented(index: ShardedIndex) -> list[int]:
        calls: list[int] = []
        for shard_no, engine in enumerate(index.shards):
            original = engine.delete

            def wrapped(key, _original=original, _no=shard_no):
                calls.append(_no)
                return _original(key)

            engine.delete = wrapped  # type: ignore[method-assign]
        return calls

    def test_fallback_skips_routed_shard(self) -> None:
        records = [(f"r{i}", "{x}") for i in range(8)]
        index = NestedSetIndex.build(records, shards=4,
                                     shard_policy="roundrobin")
        assert isinstance(index, ShardedIndex)
        calls = self._instrumented(index)
        # Build consumed 8 round-robin slots, so this delete routes to
        # shard 0 -- but "r1" lives in shard 1: the fallback must fire.
        assert index.delete("r1")
        assert calls[0] == 0                  # the routed miss
        assert calls.count(0) == 1            # ...never re-tried
        assert calls == [0, 1]                # sweep stopped at the hit

    def test_missing_key_tries_each_shard_once(self) -> None:
        records = [(f"r{i}", "{x}") for i in range(8)]
        index = NestedSetIndex.build(records, shards=4,
                                     shard_policy="roundrobin")
        assert isinstance(index, ShardedIndex)
        calls = self._instrumented(index)
        assert not index.delete("never-there")
        assert len(calls) == index.n_shards   # routed + 3 others, no dupes
        assert sorted(calls) == [0, 1, 2, 3]
