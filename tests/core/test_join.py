"""Tests for the full-join executor (Equation 1)."""

from __future__ import annotations

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.join import JoinResult, containment_join, self_join
from repro.core.matchspec import QuerySpec
from repro.core.naive import naive_containment_join


@pytest.fixture
def index(small_corpus) -> NestedSetIndex:
    return NestedSetIndex.build(small_corpus, bloom="flat")


@pytest.fixture
def queries(small_corpus):
    return [(f"q{i}", tree) for i, (_key, tree)
            in enumerate(small_corpus[:10])]


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["per-query", "batched", "naive"])
    def test_all_strategies_agree(self, small_corpus, index, queries,
                                  strategy: str) -> None:
        expect = sorted(naive_containment_join(queries, small_corpus))
        result = containment_join(index, queries, strategy=strategy)
        assert sorted(result.pairs) == expect
        assert result.strategy == strategy
        assert result.n_queries == len(queries)
        assert result.elapsed_seconds >= 0

    def test_bloom_prefiltered_naive(self, small_corpus, index,
                                     queries) -> None:
        expect = sorted(naive_containment_join(queries, small_corpus))
        result = containment_join(index, queries, strategy="naive",
                                  use_bloom=True)
        assert sorted(result.pairs) == expect
        assert result.extra["records_skipped"] > 0

    def test_batched_reports_sharing(self, index, queries) -> None:
        doubled = queries + [(f"{qkey}b", tree) for qkey, tree in queries]
        result = containment_join(index, doubled, strategy="batched")
        assert result.extra["subqueries_reused"] > 0

    def test_nondefault_spec(self, small_corpus, index, queries) -> None:
        spec = QuerySpec(join="superset")
        expect = sorted(naive_containment_join(queries, small_corpus,
                                               spec))
        result = containment_join(index, queries, strategy="per-query",
                                  spec=spec)
        assert sorted(result.pairs) == expect

    def test_unknown_strategy(self, index, queries) -> None:
        with pytest.raises(ValueError):
            containment_join(index, queries, strategy="quantum")


class TestResultObject:
    def test_grouped(self) -> None:
        result = JoinResult(pairs=[("q1", "a"), ("q1", "b"), ("q2", "a")],
                            strategy="per-query", n_queries=2,
                            elapsed_seconds=0.1)
        assert result.grouped() == {"q1": ["a", "b"], "q2": ["a"]}
        assert result.n_pairs == 3

    def test_grouped_keeps_empty_queries(self) -> None:
        """Regression: queries with zero matches must not vanish."""
        result = JoinResult(pairs=[("q1", "a")], strategy="per-query",
                            n_queries=3, elapsed_seconds=0.1,
                            query_keys=["q1", "q2", "q3"])
        assert result.grouped() == {"q1": ["a"], "q2": [], "q3": []}

    def test_join_populates_query_keys(self, index, queries) -> None:
        result = containment_join(index, queries)
        assert result.query_keys == [qkey for qkey, _tree in queries]
        assert set(result.grouped()) == set(result.query_keys)


class TestSelfJoin:
    def test_every_record_matches_itself(self, small_corpus, index) -> None:
        result = self_join(index)
        reflexive = {(key, key) for key, _tree in small_corpus}
        assert reflexive <= set(result.pairs)
        assert result.n_queries == len(small_corpus)

    def test_self_join_equals_naive(self, small_corpus, index) -> None:
        queries = list(small_corpus)
        expect = sorted(naive_containment_join(queries, small_corpus))
        assert sorted(self_join(index).pairs) == expect
