"""Stateful property test: index updates vs an in-memory model.

Hypothesis drives interleaved insert / delete / compact / query
operations against a live index, checking query results against the
naive oracle over the model collection after every step and running the
structural integrity checker at teardown.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.checker import assert_healthy
from repro.core.engine import NestedSetIndex
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.naive import reference_query

_ATOMS = st.sampled_from(["a", "b", "c", "d", "e"])


def _trees():
    return st.recursive(
        st.builds(lambda a: NestedSet(a),
                  st.lists(_ATOMS, min_size=1, max_size=3)),
        lambda kids: st.builds(lambda a, c: NestedSet(a, c),
                               st.lists(_ATOMS, max_size=2),
                               st.lists(kids, min_size=1, max_size=2)),
        max_leaves=8)


class UpdateMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.model: dict[str, NestedSet] = {}
        self.counter = 0
        self.index: NestedSetIndex | None = None

    @initialize(seed_trees=st.lists(_trees(), min_size=1, max_size=4))
    def setup(self, seed_trees) -> None:
        records = [(f"seed{i}", tree)
                   for i, tree in enumerate(seed_trees)]
        self.model = dict(records)
        # segment_size=4 forces the segmented update path constantly.
        self.index = NestedSetIndex.build(records, segment_size=4)

    @rule(tree=_trees())
    def insert(self, tree: NestedSet) -> None:
        key = f"rec{self.counter}"
        self.counter += 1
        self.index.insert(key, tree)
        self.model[key] = tree

    @rule(pick=st.integers(0, 10 ** 6))
    def delete_some(self, pick: int) -> None:
        if not self.model:
            return
        key = sorted(self.model)[pick % len(self.model)]
        assert self.index.delete(key) is True
        del self.model[key]

    @rule()
    def delete_missing(self) -> None:
        assert self.index.delete("never-existed") is False

    @rule()
    def compact(self) -> None:
        self.index.compact()

    @rule(query=_trees())
    def query_matches_oracle(self, query: NestedSet) -> None:
        expected = reference_query(list(self.model.items()), query,
                                   QuerySpec())
        assert self.index.query(query) == expected
        assert self.index.query(query, algorithm="topdown") == expected

    @invariant()
    def live_count_consistent(self) -> None:
        if self.index is not None:
            assert self.index.inverted_file.n_live_records == \
                len(self.model)

    def teardown(self) -> None:
        if self.index is not None:
            self.index._flush_writer()
            assert_healthy(self.index.inverted_file)
            self.index.close()


UpdateMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None)
TestStatefulUpdates = UpdateMachine.TestCase
