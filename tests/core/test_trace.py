"""Tests for the EXPLAIN-style evaluation traces."""

from __future__ import annotations

import random

import pytest

from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.topdown import topdown_match_nodes
from repro.core.trace import explain
from tests.conftest import random_tree

N = NestedSet


@pytest.fixture
def index(paper_records) -> InvertedFile:
    return InvertedFile.build(paper_records)


class TestExplain:
    def test_matches_equal_algorithm(self, index, paper_query) -> None:
        result = explain(paper_query, index)
        assert result.matches == ["tim"]

    def test_trace_structure(self, index, paper_query) -> None:
        result = explain(paper_query, index)
        root = result.root
        assert root.atoms == ["USA"]
        assert len(root.children) == 1                 # the {UK, ...} child
        assert len(root.children[0].children) == 1     # {A, motorbike}
        assert root.restricted is None                 # root: no frontier
        assert root.children[0].restricted is not None

    def test_counts_are_plausible(self, index, paper_query) -> None:
        result = explain(paper_query, index)
        root = result.root
        assert root.candidates >= root.survivors
        assert result.lists_fetched >= 4   # USA, UK, A, motorbike
        assert result.total_ms > 0

    def test_render(self, index, paper_query) -> None:
        text = explain(paper_query, index).render()
        assert "matches=1" in text
        assert "candidates=" in text
        assert text.count("node ") == 3

    def test_empty_result_trace(self, index) -> None:
        result = explain(N(["Narnia"]), index)
        assert result.matches == []
        assert result.root.candidates == 0
        assert result.root.survivors == 0

    def test_list_lengths_recorded(self, index) -> None:
        result = explain(N(["UK", "London"]), index)
        assert result.root.list_lengths == {"UK": 4, "London": 1}


class TestExplainAgreement:
    """Traces must compute exactly what the strict top-down computes."""

    @pytest.mark.parametrize("spec", [
        QuerySpec(),
        QuerySpec(semantics="iso"),
        QuerySpec(semantics="homeo"),
        QuerySpec(join="equality"),
        QuerySpec(join="superset"),
        QuerySpec(join="overlap", epsilon=2),
        QuerySpec(mode="anywhere"),
    ], ids=lambda s: f"{s.semantics}-{s.join}-{s.mode}")
    def test_randomized_agreement(self, small_corpus, spec) -> None:
        index = InvertedFile.build(small_corpus)
        rng = random.Random(str(spec))
        atoms = [f"a{i}" for i in range(12)]
        for _ in range(30):
            query = random_tree(rng, atoms)
            expected = index.heads_to_keys(
                topdown_match_nodes(query, index, spec), mode=spec.mode)
            assert explain(query, index, spec).matches == expected
