"""Tests for the nested multiset (bag) data model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bags import (
    NestedBag,
    bag_contains,
    bag_equal,
    bag_filter_verify,
    bag_reference_query,
    json_to_nested_bag,
)
from repro.core.engine import NestedSetIndex
from repro.core.model import NestedSet
from repro.core.semantics import hom_contains

B = NestedBag
N = NestedSet


def small_bags():
    atoms = st.sampled_from(["a", "b", "c"])
    return st.recursive(
        st.builds(lambda a: B(a), st.lists(atoms, max_size=4)),
        lambda kids: st.builds(lambda a, c: B(a, c),
                               st.lists(atoms, max_size=3),
                               st.lists(kids, max_size=3)),
        max_leaves=10)


class TestModel:
    def test_multiplicities_kept(self) -> None:
        bag = B(["a", "a", "b"])
        assert bag.multiplicity("a") == 2
        assert bag.multiplicity("b") == 1
        assert bag.multiplicity("zz") == 0
        assert bag.cardinality == 3

    def test_distinct_from_set_semantics(self) -> None:
        assert B(["a", "a"]) != B(["a"])
        assert N.from_obj(["a", "a"]) == N.from_obj(["a"])

    def test_child_multiplicities(self) -> None:
        bag = B([], [B(["x"]), B(["x"]), B(["y"])])
        counts = dict((child.to_text(), count)
                      for child, count in bag.children)
        assert counts == {"{x}": 2, "{y}": 1}

    def test_equality_and_hash(self) -> None:
        left = B(["a", "a"], [B(["b"]), B(["b"])])
        right = B(["a", "a"], [B(["b"]), B(["b"])])
        assert left == right
        assert hash(left) == hash(right)
        assert left != B(["a", "a"], [B(["b"])])

    def test_from_obj_preserves_duplicates(self) -> None:
        bag = B.from_obj(["a", "a", ["b"], ["b"]])
        assert bag.multiplicity("a") == 2
        assert bag.children[0][1] == 2

    def test_from_nested_set(self) -> None:
        tree = N(["a"], [N(["b"])])
        bag = B.from_obj(tree)
        assert bag.to_set() == tree

    def test_parse_keeps_duplicates(self) -> None:
        bag = B.parse("{a, a, {b}, {b}}")
        assert bag.multiplicity("a") == 2
        assert bag.children[0][1] == 2

    def test_text_roundtrip(self) -> None:
        bag = B(["a", "a", 5], [B(["b"]), B(["b"]), B()])
        assert B.parse(bag.to_text()) == bag

    @settings(max_examples=100)
    @given(small_bags())
    def test_text_roundtrip_property(self, bag: NestedBag) -> None:
        assert B.parse(bag.to_text()) == bag

    def test_to_set_collapses(self) -> None:
        bag = B(["a", "a"], [B(["b"]), B(["b"])])
        assert bag.to_set() == N(["a"], [N(["b"])])

    def test_type_validation(self) -> None:
        from repro.core.model import NestedSetError
        with pytest.raises(NestedSetError):
            B([3.5])
        with pytest.raises(NestedSetError):
            B([], ["not a bag"])  # type: ignore[list-item]
        with pytest.raises(NestedSetError):
            B.from_obj(42)


class TestBagContainment:
    def test_multiplicity_enforced(self) -> None:
        assert bag_contains(B(["a", "a"]), B(["a"]))
        assert bag_contains(B(["a", "a"]), B(["a", "a"]))
        assert not bag_contains(B(["a"]), B(["a", "a"]))

    def test_child_copies_need_distinct_witnesses(self) -> None:
        two_copies = B([], [B(["x"]), B(["x"])])
        one_copy = B([], [B(["x"])])
        assert bag_contains(two_copies, one_copy)
        assert not bag_contains(one_copy, two_copies)

    def test_recursive_containment(self) -> None:
        data = B(["t"], [B(["a", "a", "b"]), B(["c"])])
        assert bag_contains(data, B([], [B(["a", "a"])]))
        assert not bag_contains(data, B([], [B(["a", "a", "a"])]))

    def test_matching_reroutes(self) -> None:
        # q child {a} fits either data child; q child {a,b} fits only one.
        data = B([], [B(["a", "b"]), B(["a"])])
        query = B([], [B(["a"]), B(["a", "b"])])
        assert bag_contains(data, query)

    def test_empty_query(self) -> None:
        assert bag_contains(B(["a"]), B())
        assert bag_contains(B(), B())

    @settings(max_examples=120)
    @given(small_bags())
    def test_reflexive(self, bag: NestedBag) -> None:
        assert bag_contains(bag, bag)
        assert bag_equal(bag, bag)

    @settings(max_examples=120)
    @given(small_bags(), small_bags())
    def test_bag_containment_implies_set_hom(self, data, query) -> None:
        if bag_contains(data, query):
            assert hom_contains(data.to_set(), query.to_set())

    def test_set_hom_does_not_imply_bag(self) -> None:
        data, query = B(["a"]), B(["a", "a"])
        assert hom_contains(data.to_set(), query.to_set())
        assert not bag_contains(data, query)


class TestFilterVerify:
    def test_equals_reference_scan(self) -> None:
        rng = random.Random(3)
        atoms = ["a", "b", "c", "d"]

        def rand_bag(depth: int = 0) -> NestedBag:
            bag_atoms = [rng.choice(atoms)
                         for _ in range(rng.randint(1, 4))]
            kids = [rand_bag(depth + 1)
                    for _ in range(rng.randint(0, 2))] if depth < 2 else []
            return B(bag_atoms, kids)

        bag_records = {f"r{i:02d}": rand_bag() for i in range(40)}
        index = NestedSetIndex.build(
            (key, bag.to_set()) for key, bag in bag_records.items())
        for _ in range(40):
            query = rand_bag()
            expect = bag_reference_query(bag_records.items(), query)
            got = sorted(bag_filter_verify(index, bag_records, query))
            assert got == expect


class TestJsonBags:
    def test_array_duplicates_preserved(self) -> None:
        bag = json_to_nested_bag({"tags": ["x", "x", "y"]})
        (child, _count), = bag.children
        assert child.multiplicity("x") == 2

    def test_duplicate_objects_preserved(self) -> None:
        bag = json_to_nested_bag([{"a": 1}, {"a": 1}])
        assert bag.children[0][1] == 2

    def test_scalar_document(self) -> None:
        assert json_to_nested_bag(5) == B([5])

    def test_agrees_with_set_adapter_after_dedupe(self) -> None:
        from repro.data.json_adapter import json_to_nested
        document = {"user": {"name": "sue"}, "tags": ["x", "x", "y"],
                    "n": 3}
        assert json_to_nested_bag(document).to_set() == \
            json_to_nested(document)
