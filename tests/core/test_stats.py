"""Tests for collection statistics and cost estimation."""

from __future__ import annotations

import pytest

from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.stats import CollectionStats

N = NestedSet


@pytest.fixture
def stats(paper_records) -> CollectionStats:
    return CollectionStats.from_inverted_file(
        InvertedFile.build(paper_records))


class TestPerAtom:
    def test_document_frequency(self, stats: CollectionStats) -> None:
        assert stats.document_frequency("UK") == 4
        assert stats.document_frequency("London") == 1
        assert stats.document_frequency("Narnia") == 0

    def test_selectivity(self, stats: CollectionStats) -> None:
        assert stats.selectivity("UK") == 4 / stats.n_nodes
        assert stats.selectivity("Narnia") == 0.0

    def test_empty_collection(self) -> None:
        empty = CollectionStats([], 0, 0)
        assert empty.selectivity("x") == 0.0
        assert empty.atom_stats().distinct_atoms == 0


class TestEstimates:
    def test_subset_uses_rarest_atom(self, stats: CollectionStats) -> None:
        node = N(["UK", "London"])
        assert stats.estimate_candidates(node) == 1  # London's df

    def test_empty_node_subset(self, stats: CollectionStats) -> None:
        assert stats.estimate_candidates(N()) == stats.n_nodes

    def test_union_joins_sum(self, stats: CollectionStats) -> None:
        node = N(["UK", "London"])
        spec = QuerySpec(join="overlap")
        assert stats.estimate_candidates(node, spec) == 5

    def test_overlap_empty_node(self, stats: CollectionStats) -> None:
        assert stats.estimate_candidates(
            N(), QuerySpec(join="overlap")) == 0.0

    def test_query_cost_additive(self, stats: CollectionStats) -> None:
        flat = N(["UK"])
        nested = N(["UK"], [N(["UK"])])
        assert stats.estimate_query_cost(nested) == \
            2 * stats.estimate_query_cost(flat)


class TestSummaries:
    def test_atom_stats(self, stats: CollectionStats) -> None:
        summary = stats.atom_stats()
        assert summary.distinct_atoms == 10
        assert summary.max_df == 4          # UK
        assert summary.total_postings > 0
        assert 0 < summary.skew_ratio <= 1

    def test_hottest(self, stats: CollectionStats) -> None:
        top = stats.hottest(3)
        # A and UK tie at df 4; the tie breaks on the atom token.
        assert top[0] == ("A", 4)
        assert top[1] == ("UK", 4)
        assert len(top) == 3
        dfs = [df for _atom, df in top]
        assert dfs == sorted(dfs, reverse=True)
