"""Cross-validation of the top-down and bottom-up algorithms.

The central correctness test of the reproduction: on randomized
collections and queries, both index algorithms must agree with the naive
tree-checking oracle under every semantics × join × mode combination, and
the paper-literal top-down variant must over-approximate (never miss)
under its documented path-consistency relaxation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bottomup import bottomup_match_nodes, bottomup_query
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec, QuerySpecError
from repro.core.model import NestedSet
from repro.core.naive import reference_query
from repro.core.topdown import (
    topdown_match_nodes,
    topdown_paper_match_nodes,
    topdown_query,
)
from tests.conftest import random_tree

N = NestedSet


@pytest.fixture(scope="module")
def corpus() -> list[tuple[str, NestedSet]]:
    rng = random.Random(314159)
    atoms = [f"a{i}" for i in range(10)]
    return [(f"r{i:02d}", random_tree(rng, atoms)) for i in range(50)]


@pytest.fixture(scope="module")
def index(corpus) -> InvertedFile:
    return InvertedFile.build(corpus)


def specs() -> list[QuerySpec]:
    out = []
    for semantics in ("hom", "iso", "homeo"):
        for mode in ("root", "anywhere"):
            out.append(QuerySpec(semantics=semantics, mode=mode))
    for join in ("equality", "superset", "overlap"):
        for mode in ("root", "anywhere"):
            out.append(QuerySpec(join=join, mode=mode))
    out.append(QuerySpec(join="overlap", epsilon=2))
    return out


class TestPaperExample:
    """The running example of Sections 1-3 (Figures 3-5)."""

    @pytest.fixture
    def paper_index(self, paper_records) -> InvertedFile:
        return InvertedFile.build(paper_records)

    def test_topdown(self, paper_index, paper_query) -> None:
        assert topdown_query(paper_query, paper_index) == ["tim"]

    def test_bottomup(self, paper_index, paper_query) -> None:
        assert bottomup_query(paper_query, paper_index) == ["tim"]

    def test_paper_literal_topdown(self, paper_index, paper_query) -> None:
        heads = topdown_paper_match_nodes(paper_query, paper_index)
        assert paper_index.heads_to_keys(heads) == ["tim"]

    def test_sue_query(self, paper_index) -> None:
        query = N(["London"], [N(["UK"], [N(["A", "B", "C"])])])
        assert topdown_query(query, paper_index) == ["sue"]
        assert bottomup_query(query, paper_index) == ["sue"]

    def test_both_records(self, paper_index) -> None:
        query = N([], [N(["UK"], [N(["A", "motorbike"])])])
        assert topdown_query(query, paper_index) == ["sue", "tim"]
        assert bottomup_query(query, paper_index) == ["sue", "tim"]

    def test_negative_query(self, paper_index, paper_query) -> None:
        distorted = paper_query.with_atom("__fresh__")
        assert topdown_query(distorted, paper_index) == []
        assert bottomup_query(distorted, paper_index) == []


class TestCrossValidation:
    @pytest.mark.parametrize("spec", specs(),
                             ids=lambda s: f"{s.semantics}-{s.join}-"
                                           f"{s.mode}-eps{s.epsilon}")
    def test_algorithms_match_oracle(self, corpus, index,
                                     spec: QuerySpec) -> None:
        rng = random.Random(f"xval-{spec}")
        atoms = [f"a{i}" for i in range(10)] + ["zz"]
        for trial in range(60):
            query = random_tree(rng, atoms)
            expect = reference_query(corpus, query, spec)
            got_td = index.heads_to_keys(
                topdown_match_nodes(query, index, spec), mode=spec.mode)
            got_bu = index.heads_to_keys(
                bottomup_match_nodes(query, index, spec), mode=spec.mode)
            assert got_td == expect, f"topdown diverged on {query.to_text()}"
            assert got_bu == expect, f"bottomup diverged on {query.to_text()}"

    def test_queries_sampled_from_corpus(self, corpus, index) -> None:
        # Positive-workload shape: every record contains itself.
        for key, tree in corpus[:20]:
            for match_fn in (topdown_match_nodes, bottomup_match_nodes):
                keys = index.heads_to_keys(match_fn(tree, index))
                assert key in keys


class TestPaperLiteralTopDown:
    def test_sound_overapproximation(self, corpus, index) -> None:
        # The literal variant may add path-mixed false positives (see
        # test_known_counterexample) but must never miss a true match.
        rng = random.Random("paper-literal")
        atoms = [f"a{i}" for i in range(10)]
        for trial in range(150):
            query = random_tree(rng, atoms)
            expect = set(reference_query(corpus, query, QuerySpec()))
            got = set(index.heads_to_keys(
                topdown_paper_match_nodes(query, index)))
            assert got >= expect, "literal variant must never miss a match"

    def test_exact_on_path_queries(self, corpus, index) -> None:
        # Queries with at most one internal child per node: the relaxation
        # cannot fire, so the literal variant is exact.
        rng = random.Random("paths")
        atoms = [f"a{i}" for i in range(10)]
        for trial in range(80):
            query = random_tree(rng, atoms, max_children=1)
            expect = reference_query(corpus, query, QuerySpec())
            got = index.heads_to_keys(
                topdown_paper_match_nodes(query, index))
            assert got == expect

    def test_known_counterexample(self) -> None:
        # DESIGN.md's path-mixing example, verbatim.
        data = N([], [N(["l"], [N(["x"])]), N(["l"], [N(["y"])])])
        query = N([], [N(["l"], [N(["x"]), N(["y"])])])
        index = InvertedFile.build([("r", data)])
        assert bottomup_query(query, index) == []
        assert topdown_query(query, index) == []
        heads = topdown_paper_match_nodes(query, index)
        assert index.heads_to_keys(heads) == ["r"]  # the false positive

    def test_unsupported_combinations(self, index) -> None:
        with pytest.raises(QuerySpecError):
            topdown_paper_match_nodes(N(["a"]), index,
                                      QuerySpec(semantics="iso"))
        with pytest.raises(QuerySpecError):
            topdown_paper_match_nodes(N(["a"]), index,
                                      QuerySpec(join="superset"))

    def test_homeo_literal_matches_oracle_on_paths(self, corpus,
                                                   index) -> None:
        rng = random.Random("homeo-literal")
        atoms = [f"a{i}" for i in range(10)]
        spec = QuerySpec(semantics="homeo")
        for trial in range(60):
            query = random_tree(rng, atoms, max_children=1)
            expect = reference_query(corpus, query, spec)
            got = index.heads_to_keys(
                topdown_paper_match_nodes(query, index, spec))
            assert got == expect


class TestDeepAndDegenerate:
    def test_very_deep_query_no_recursion_error(self) -> None:
        # Bottom-up evaluation is iterative; a 250-level chain query works.
        # (Build-time serialization is recursive, bounding practical depth
        # at roughly a third of Python's recursion limit -- far beyond the
        # depth-10 cap of the deep synthetic data sets.)
        chain_data = N(["leaf0"])
        for level in range(1, 250):
            chain_data = N([f"leaf{level}"], [chain_data])
        index = InvertedFile.build([("deep", chain_data)])
        assert bottomup_query(chain_data, index) == ["deep"]

    def test_empty_query_matches_everything(self, corpus, index) -> None:
        assert len(bottomup_query(N(), index)) == len(corpus)
        assert len(topdown_query(N(), index)) == len(corpus)

    def test_empty_inner_set_query(self, corpus, index) -> None:
        query = N([], [N()])
        expect = reference_query(corpus, query, QuerySpec())
        assert bottomup_query(query, index) == expect
        assert topdown_query(query, index) == expect

    def test_singleton_database(self) -> None:
        index = InvertedFile.build([("only", N(["x"]))])
        assert bottomup_query(N(["x"]), index) == ["only"]
        assert bottomup_query(N(["y"]), index) == []
