"""Tests for the NestedSet data model and text syntax."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.model import (
    EXAMPLE_QUERY,
    EXAMPLE_SUE,
    EXAMPLE_TIM,
    NestedSet,
    NestedSetError,
)


def nested_sets(max_depth: int = 3) -> st.SearchStrategy[NestedSet]:
    """Hypothesis strategy generating small nested sets."""
    atoms = st.one_of(
        st.text(alphabet="abcxyz_0123456789 ,\"\\{}", min_size=0, max_size=6),
        st.integers(-1000, 1000))
    return st.recursive(
        st.builds(lambda a: NestedSet(a), st.lists(atoms, max_size=4)),
        lambda children: st.builds(
            lambda a, c: NestedSet(a, c),
            st.lists(atoms, max_size=3),
            st.lists(children, max_size=3)),
        max_leaves=12)


class TestConstruction:
    def test_empty(self) -> None:
        empty = NestedSet()
        assert empty.is_empty
        assert empty.cardinality == 0
        assert empty.depth == 1

    def test_atoms_and_children(self) -> None:
        inner = NestedSet(["b"])
        outer = NestedSet(["a"], [inner])
        assert outer.atoms == {"a"}
        assert outer.children == {inner}
        assert outer.cardinality == 2

    def test_duplicates_collapse(self) -> None:
        tree = NestedSet(["a", "a"], [NestedSet(["b"]), NestedSet(["b"])])
        assert len(tree.atoms) == 1
        assert len(tree.children) == 1

    def test_bad_atom_type(self) -> None:
        with pytest.raises(NestedSetError):
            NestedSet([3.14])
        with pytest.raises(NestedSetError):
            NestedSet([True])

    def test_bad_child_type(self) -> None:
        with pytest.raises(NestedSetError):
            NestedSet([], ["not a set"])  # type: ignore[list-item]

    def test_from_obj(self) -> None:
        tree = NestedSet.from_obj({"a", 1, frozenset({"b"})})
        assert tree.atoms == {"a", 1}
        assert len(tree.children) == 1

    def test_from_obj_lists_act_as_sets(self) -> None:
        assert NestedSet.from_obj(["a", "a", ["b"]]) == \
            NestedSet.from_obj({"a", frozenset({"b"})})

    def test_from_obj_rejects_scalars(self) -> None:
        with pytest.raises(NestedSetError):
            NestedSet.from_obj("just an atom")

    def test_to_obj_roundtrip(self) -> None:
        tree = NestedSet(["a", 5], [NestedSet(["b"], [NestedSet()])])
        assert NestedSet.from_obj(tree.to_obj()) == tree


class TestEqualityAndHash:
    def test_structural_equality(self) -> None:
        left = NestedSet(["a"], [NestedSet(["b"])])
        right = NestedSet(["a"], [NestedSet(["b"])])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality(self) -> None:
        assert NestedSet(["a"]) != NestedSet(["b"])
        assert NestedSet(["a"]) != NestedSet([], [NestedSet(["a"])])

    def test_usable_as_set_member(self) -> None:
        members = {NestedSet(["a"]), NestedSet(["a"]), NestedSet(["b"])}
        assert len(members) == 2

    def test_int_and_str_atoms_distinct(self) -> None:
        assert NestedSet([1]) != NestedSet(["1"])


class TestMetrics:
    def test_depth(self) -> None:
        assert NestedSet(["a"]).depth == 1
        deep = NestedSet([], [NestedSet([], [NestedSet(["x"])])])
        assert deep.depth == 3

    def test_counts(self) -> None:
        tree = NestedSet(["a", "b"], [NestedSet(["c"])])
        assert tree.internal_count == 2
        assert tree.leaf_count == 3
        assert tree.size == 5
        assert len(tree) == 3  # cardinality: two atoms + one set

    def test_iter_sets_covers_all(self) -> None:
        tree = NestedSet(["a"], [NestedSet(["b"], [NestedSet(["c"])])])
        assert len(list(tree.iter_sets())) == 3

    def test_all_atoms(self) -> None:
        tree = NestedSet(["a"], [NestedSet(["b"], [NestedSet(["a", "c"])])])
        assert tree.all_atoms() == {"a", "b", "c"}


class TestUpdates:
    def test_with_atom(self) -> None:
        tree = NestedSet(["a"])
        grown = tree.with_atom("b")
        assert grown.atoms == {"a", "b"}
        assert tree.atoms == {"a"}  # original unchanged

    def test_with_child(self) -> None:
        tree = NestedSet(["a"]).with_child(NestedSet(["b"]))
        assert len(tree.children) == 1

    def test_without_atom(self) -> None:
        assert NestedSet(["a", "b"]).without_atom("a") == NestedSet(["b"])
        assert NestedSet(["a"]).without_atom("zz") == NestedSet(["a"])


class TestParse:
    def test_flat(self) -> None:
        assert NestedSet.parse("{a, b, c}") == NestedSet(["a", "b", "c"])

    def test_nested(self) -> None:
        assert NestedSet.parse("{a, {b, {c}}}") == \
            NestedSet(["a"], [NestedSet(["b"], [NestedSet(["c"])])])

    def test_empty_set(self) -> None:
        assert NestedSet.parse("{}") == NestedSet()
        assert NestedSet.parse("{ { } }") == NestedSet([], [NestedSet()])

    def test_integers(self) -> None:
        tree = NestedSet.parse("{1, -5, 2010}")
        assert tree.atoms == {1, -5, 2010}

    def test_quoted_atoms(self) -> None:
        tree = NestedSet.parse('{"has, comma", "esc\\"aped"}')
        assert tree.atoms == {"has, comma", 'esc"aped'}

    def test_whitespace_tolerant(self) -> None:
        assert NestedSet.parse(" {  a ,\n {b} } ") == \
            NestedSet(["a"], [NestedSet(["b"])])

    @pytest.mark.parametrize("bad", [
        "", "{", "{a", "{a,}", "a}", "{a} trailing", "{a b}", "{,a}",
        '{"unterminated}',
    ])
    def test_malformed(self, bad: str) -> None:
        with pytest.raises(NestedSetError):
            NestedSet.parse(bad)

    def test_paper_examples_parse(self) -> None:
        sue = NestedSet.parse(EXAMPLE_SUE)
        tim = NestedSet.parse(EXAMPLE_TIM)
        query = NestedSet.parse(EXAMPLE_QUERY)
        assert sue.atoms == {"London", "UK"}
        assert len(sue.children) == 2
        assert tim.atoms == {"Boston", "USA"}
        assert query.depth == 3

    def test_to_text_is_canonical(self) -> None:
        left = NestedSet.parse("{b, a, {z, y}}")
        right = NestedSet.parse("{a, b, {y, z}}")
        assert left.to_text() == right.to_text()

    def test_repr_truncates(self) -> None:
        tree = NestedSet([f"atom{i}" for i in range(40)])
        assert len(repr(tree)) < 90

    @given(nested_sets())
    def test_text_roundtrip_property(self, tree: NestedSet) -> None:
        assert NestedSet.parse(tree.to_text()) == tree
