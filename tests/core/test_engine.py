"""Tests for the NestedSetIndex facade."""

from __future__ import annotations

import pytest

from repro.core.cache import FrequencyCache, LRUCache, NoCache
from repro.core.engine import ALGORITHMS, NestedSetIndex, as_nested_set
from repro.core.model import NestedSet

N = NestedSet


@pytest.fixture
def index(paper_records) -> NestedSetIndex:
    return NestedSetIndex.build(paper_records)


class TestCoercion:
    def test_as_nested_set_variants(self) -> None:
        tree = N(["a"], [N(["b"])])
        assert as_nested_set(tree) is tree
        assert as_nested_set("{a, {b}}") == tree
        assert as_nested_set({"a", frozenset({"b"})}) == tree


class TestBuildAndQuery:
    def test_build_accepts_raw_objects(self) -> None:
        index = NestedSetIndex.build([("r", {"a", frozenset({"b"})})])
        assert index.query("{a}") == ["r"]

    def test_all_algorithms(self, index, paper_query) -> None:
        for algorithm in ALGORITHMS:
            assert index.query(paper_query, algorithm=algorithm) == ["tim"]

    def test_unknown_algorithm(self, index) -> None:
        with pytest.raises(ValueError):
            index.query("{a}", algorithm="quantum")

    def test_query_options(self, index, tim) -> None:
        assert index.query(tim, join="equality") == ["tim"]
        assert index.query("{UK, {A, motorbike}}",
                           mode="anywhere") == ["sue", "tim"]
        assert index.query("{USA, {A, motorbike}}",
                           semantics="homeo") == ["tim"]

    def test_query_batch(self, index) -> None:
        results = index.query_batch(["{USA}", "{London}"])
        assert results == [["tim"], ["sue"]]

    def test_containment_join(self, index) -> None:
        pairs = index.containment_join([("q1", "{USA}"), ("q2", "{UK}")])
        assert pairs == [("q1", "tim"), ("q2", "sue")]

    def test_self_check_agreement(self, index, paper_query) -> None:
        results = index.self_check(paper_query)
        assert set(results) == set(ALGORITHMS)
        assert all(value == ["tim"] for value in results.values())

    def test_self_check_skips_inapplicable(self, index) -> None:
        results = index.self_check("{USA}", join="superset")
        assert "topdown-paper" not in results

    def test_bloom_guard(self, index, paper_query) -> None:
        with pytest.raises(ValueError):
            index.query(paper_query, algorithm="topdown", use_bloom=True)

    def test_bloom_with_naive(self, paper_records, paper_query) -> None:
        index = NestedSetIndex.build(paper_records, bloom="flat")
        assert index.query(paper_query, algorithm="naive",
                           use_bloom=True) == ["tim"]
        assert index.bloom_index is not None


class TestCacheManagement:
    def test_cache_policies_on_build(self, paper_records) -> None:
        for policy, cls in ((None, NoCache), ("frequency", FrequencyCache),
                            ("lru", LRUCache)):
            index = NestedSetIndex.build(paper_records, cache=policy)
            assert isinstance(index.inverted_file.cache.inner, cls)

    def test_set_cache_swaps_policy(self, index) -> None:
        index.set_cache("frequency", budget=10)
        assert isinstance(index.inverted_file.cache.inner, FrequencyCache)
        index.set_cache(None)
        assert isinstance(index.inverted_file.cache.inner, NoCache)

    def test_cached_results_identical(self, paper_records,
                                      paper_query) -> None:
        index = NestedSetIndex.build(paper_records, cache="frequency")
        first = index.query(paper_query)
        second = index.query(paper_query)
        assert first == second == ["tim"]
        assert index.stats()["cache"]["hits"] > 0


class TestIntrospection:
    def test_counts(self, index, paper_records) -> None:
        assert index.n_records == 2
        assert index.n_nodes == sum(tree.internal_count
                                    for _k, tree in paper_records)

    def test_records_iteration(self, index, paper_records) -> None:
        assert dict(index.records()) == dict(paper_records)

    def test_stats_shape(self, index, paper_query) -> None:
        index.query(paper_query)
        stats = index.stats()
        assert stats["index"]["postings_requests"] > 0
        assert "policy" in stats["cache"]
        assert "gets" in stats["store"]
        index.reset_stats()
        assert index.stats()["index"]["postings_requests"] == 0


class TestPersistence:
    @pytest.mark.parametrize("kind", ["diskhash", "btree"])
    def test_build_open_cycle(self, kind, tmp_path, paper_records,
                              paper_query) -> None:
        path = str(tmp_path / f"engine.{kind}")
        with NestedSetIndex.build(paper_records, storage=kind,
                                  path=path) as index:
            assert index.query(paper_query) == ["tim"]
        with NestedSetIndex.open(kind, path, cache="frequency",
                                 bloom="flat") as reopened:
            assert reopened.query(paper_query) == ["tim"]
            assert reopened.query(paper_query, algorithm="naive",
                                  use_bloom=True) == ["tim"]
