"""Tombstone-adjusted statistics: deletes must not skew the planner.

The document-frequency table is only rewritten on flush/compact, and
tombstoned records keep their postings until compaction -- so without
adjustment, a delete-heavy index would keep planning against frequencies
that no longer reflect the live collection.  The inverted file maintains
per-atom dead counts (persisted at ``M:dead``) and exposes live
frequencies that the planner and the intersection ordering consume.
"""

from __future__ import annotations

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.planner import Planner
from repro.core.stats import CollectionStats


def _skewed_records() -> list[tuple[str, str]]:
    """'common' in ten records, 'rare' in three."""
    records = [(f"c{i}", "{common, filler%d}".replace("%d", str(i)))
               for i in range(10)]
    records += [(f"s{i}", "{rare, filler%d}".replace("%d", str(i)))
                for i in range(3)]
    return records


class TestLiveCounts:
    def test_live_list_length_tracks_deletes(self) -> None:
        index = NestedSetIndex.build(_skewed_records())
        ifile = index.inverted_file
        assert ifile.live_list_length("common") == 10
        for i in range(9):
            assert index.delete(f"c{i}")
        assert ifile.list_length("common") == 10   # postings untouched
        assert ifile.live_list_length("common") == 1
        assert ifile.live_list_length("rare") == 3

    def test_live_frequencies_drop_dead_atoms(self) -> None:
        index = NestedSetIndex.build(_skewed_records())
        for i in range(10):
            index.delete(f"c{i}")
        live = dict(index.inverted_file.live_frequencies())
        assert "common" not in live
        assert live["rare"] == 3

    def test_collection_stats_use_live_counts(self) -> None:
        index = NestedSetIndex.build(_skewed_records())
        for i in range(9):
            index.delete(f"c{i}")
        stats = CollectionStats.from_inverted_file(index.inverted_file)
        assert stats.document_frequency("common") == 1
        assert stats.document_frequency("rare") == 3
        assert stats.n_records == 4

    def test_planner_picks_truly_rarest_after_deletes(self) -> None:
        """The regression the satellite pins: a delete-heavy index must
        order by *live* selectivity, not stale document frequencies."""
        common_child = NestedSet(["common"])
        rare_child = NestedSet(["rare"])
        index = NestedSetIndex.build(_skewed_records())

        before = Planner(CollectionStats.from_inverted_file(
            index.inverted_file))
        assert before.order_children([common_child, rare_child],
                                     QuerySpec()) == \
            [rare_child, common_child]           # rare is rarest pre-delete

        for i in range(9):
            index.delete(f"c{i}")
        after = Planner(CollectionStats.from_inverted_file(
            index.inverted_file))
        assert after.order_children([common_child, rare_child],
                                    QuerySpec()) == \
            [common_child, rare_child]           # now common is rarest

    def test_intersection_ranks_by_live_length(self) -> None:
        index = NestedSetIndex.build(
            [(f"b{i}", "{both, common}") for i in range(10)] +
            [("solo", "{both}")])
        for i in range(10):
            index.delete(f"b{i}")
        # 'common' now has live length 0: intersecting it first yields
        # the empty candidate set immediately; correctness is unchanged.
        assert index.query("{both}") == ["solo"]
        assert index.query("{both, common}") == []

    @pytest.mark.parametrize("storage", ["diskhash", "btree"])
    def test_dead_counts_persist(self, storage, tmp_path) -> None:
        path = str(tmp_path / "idx")
        index = NestedSetIndex.build(_skewed_records(), storage=storage,
                                     path=path)
        for i in range(9):
            index.delete(f"c{i}")
        index.close()
        reopened = NestedSetIndex.open(storage, path)
        assert reopened.inverted_file.live_list_length("common") == 1
        stats = CollectionStats.from_inverted_file(reopened.inverted_file)
        assert stats.document_frequency("common") == 1
        reopened.close()

    def test_compact_resets_dead_counts(self) -> None:
        index = NestedSetIndex.build(_skewed_records())
        for i in range(9):
            index.delete(f"c{i}")
        index.compact()
        ifile = index.inverted_file
        assert ifile.dead_counts == {}
        assert ifile.live_list_length("common") == 1
        assert ifile.list_length("common") == 1  # postings rebuilt

    def test_queries_unchanged_by_adjustment(self) -> None:
        # Live ordering is a planning concern only; answers are pinned.
        records = _skewed_records()
        index = NestedSetIndex.build(records)
        for i in range(5):
            index.delete(f"c{i}")
        survivors = [f"c{i}" for i in range(5, 10)]
        assert index.query("{common}") == survivors
        for algorithm in ("bottomup", "topdown", "naive"):
            assert index.query("{common}", algorithm=algorithm) == survivors
