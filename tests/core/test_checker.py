"""Tests for the index integrity checker."""

from __future__ import annotations

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.checker import assert_healthy, check_index
from repro.core.invfile import InvertedFile
from repro.core.model import NestedSet
from repro.core.updates import IndexWriter
from repro.storage.codec import encode_varint

N = NestedSet


class TestHealthyIndexes:
    def test_paper_example(self, paper_records) -> None:
        assert check_index(InvertedFile.build(paper_records)) == []

    @pytest.mark.parametrize("dataset", ["zipf-wide", "twitter", "dblp"])
    def test_generated_collections(self, dataset: str) -> None:
        records = list(generate_dataset(dataset, 60, seed=4))
        assert_healthy(InvertedFile.build(records))

    def test_segmented_index(self) -> None:
        records = list(generate_dataset("zipf-wide", 200, seed=4,
                                        theta=0.9))
        assert_healthy(InvertedFile.build(records, segment_size=32))

    def test_after_updates(self, small_corpus) -> None:
        index = InvertedFile.build(small_corpus)
        writer = IndexWriter(index)
        writer.insert("u1", N(["a1"], [N(["a2", "zz"])]))
        writer.insert("u2", N(["a3"]))
        writer.delete(small_corpus[0][0])
        writer.flush()
        assert_healthy(index)

    def test_disk_index(self, tmp_path, small_corpus) -> None:
        path = str(tmp_path / "chk.idx")
        InvertedFile.build(small_corpus, storage="diskhash",
                           path=path).close()
        reopened = InvertedFile.open("diskhash", path)
        assert_healthy(reopened)
        reopened.close()

    def test_max_atoms_bound(self, small_corpus) -> None:
        index = InvertedFile.build(small_corpus)
        assert check_index(index, max_atoms=3) == []


class TestCorruptionDetection:
    def test_truncated_posting_list(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        # Drop one posting from UK's list.
        from repro.core.segments import decode_plain, encode_plain
        raw = index.store.get(b"A:s:UK")
        entries = decode_plain(raw)
        index.store.put(b"A:s:UK", encode_plain(entries[:-1]))
        index.cache.clear()
        problems = check_index(index)
        assert any("UK" in problem and "misses" in problem
                   for problem in problems)

    def test_corrupted_metadata(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        block = bytearray(index.store.get(b"N:" + encode_varint(0)))
        block[0] ^= 0xFF  # flip the first node's record ordinal
        index.store.put(b"N:" + encode_varint(0), bytes(block))
        index._meta_cache.clear()
        problems = check_index(index)
        assert any("metadata" in problem for problem in problems)

    def test_wrong_node_count(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        index.n_nodes += 5
        problems = check_index(index)
        assert any("nodes" in problem for problem in problems)

    def test_bogus_deleted_ordinal(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        index.deleted.add(999)
        problems = check_index(index)
        assert any("unknown ordinal" in problem for problem in problems)

    def test_broken_keymap(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        index.store.put(b"K:tim", encode_varint(0))  # points at sue
        problems = check_index(index)
        assert any("key map" in problem for problem in problems)

    def test_assert_healthy_raises(self, paper_records) -> None:
        index = InvertedFile.build(paper_records)
        index.n_nodes += 1
        with pytest.raises(AssertionError) as err:
            assert_healthy(index)
        assert "integrity" in str(err.value)
