"""Tests for the Bloom-filter pruning structures (Section 3.3)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import (
    BloomFilter,
    BloomIndex,
    BreadthBloom,
    DepthBloom,
)
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.semantics import hom_contains
from tests.conftest import random_tree

N = NestedSet


class TestBloomFilter:
    def test_membership(self) -> None:
        bloom = BloomFilter()
        bloom.add("hello")
        assert "hello" in bloom
        assert "goodbye" not in bloom

    def test_no_false_negatives(self) -> None:
        bloom = BloomFilter(n_bits=256)
        items = [f"item{i}" for i in range(50)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_subsume_reflexive_and_monotone(self) -> None:
        small = BloomFilter()
        small.add("a")
        big = BloomFilter()
        big.add("a")
        big.add("b")
        assert small.might_subsume(big)
        assert small.might_subsume(small)
        assert not big.might_subsume(small)

    def test_incompatible_parameters(self) -> None:
        with pytest.raises(ValueError):
            BloomFilter(n_bits=128).might_subsume(BloomFilter(n_bits=256))

    def test_union(self) -> None:
        left = BloomFilter()
        left.add("a")
        right = BloomFilter()
        right.add("b")
        both = left.union(right)
        assert "a" in both and "b" in both

    def test_encode_decode(self) -> None:
        bloom = BloomFilter(n_bits=128, n_hashes=2)
        bloom.add("x")
        decoded = BloomFilter.decode(bloom.encode())
        assert decoded.bits == bloom.bits
        assert decoded.n_bits == 128
        assert decoded.n_hashes == 2

    def test_fill_ratio(self) -> None:
        bloom = BloomFilter(n_bits=64, n_hashes=1)
        assert bloom.fill_ratio == 0.0
        bloom.add("a")
        assert 0 < bloom.fill_ratio <= 1 / 64 + 1e-9

    def test_parameter_validation(self) -> None:
        with pytest.raises(ValueError):
            BloomFilter(n_bits=4)
        with pytest.raises(ValueError):
            BloomFilter(n_hashes=0)

    def test_for_tree_covers_all_levels(self) -> None:
        tree = N(["a"], [N(["b"], [N([42])])])
        bloom = BloomFilter.for_tree(tree)
        for token in ("s:a", "s:b", "i:42"):
            assert token in bloom


class TestSoundness:
    """A Bloom prune must never discard a true containment."""

    @settings(max_examples=150)
    @given(st.integers(0, 10 ** 6))
    def test_flat_soundness(self, seed: int) -> None:
        rng = random.Random(seed)
        atoms = [f"a{i}" for i in range(8)]
        data = random_tree(rng, atoms)
        query = random_tree(rng, atoms)
        if hom_contains(data, query):
            qf = BloomFilter.for_tree(query)
            sf = BloomFilter.for_tree(data)
            assert qf.might_subsume(sf)

    @settings(max_examples=150)
    @given(st.integers(0, 10 ** 6))
    def test_breadth_soundness(self, seed: int) -> None:
        rng = random.Random(seed)
        atoms = [f"a{i}" for i in range(8)]
        data = random_tree(rng, atoms)
        query = random_tree(rng, atoms)
        if hom_contains(data, query):
            assert BreadthBloom.for_tree(query).might_subsume(
                BreadthBloom.for_tree(data))

    @settings(max_examples=150)
    @given(st.integers(0, 10 ** 6))
    def test_depth_soundness(self, seed: int) -> None:
        rng = random.Random(seed)
        atoms = [f"a{i}" for i in range(8)]
        data = random_tree(rng, atoms)
        query = random_tree(rng, atoms)
        if hom_contains(data, query):
            assert DepthBloom.for_tree(query).might_subsume(
                DepthBloom.for_tree(data))


class TestPruningPower:
    def test_breadth_prunes_deeper_queries(self) -> None:
        data = N(["a"])                      # depth 1
        query = N(["a"], [N(["a"])])         # depth 2
        assert not BreadthBloom.for_tree(query).might_subsume(
            BreadthBloom.for_tree(data))

    def test_depth_prunes_wrong_nesting(self) -> None:
        # Same atoms, different parent-child pairs: flat cannot prune,
        # the depth (pair) filter can.
        data = N(["a"], [N(["b"])])
        query = N(["b"], [N(["a"])])
        assert BloomFilter.for_tree(query).might_subsume(
            BloomFilter.for_tree(data))
        assert not DepthBloom.for_tree(query).might_subsume(
            DepthBloom.for_tree(data))


class TestBloomIndex:
    @pytest.fixture
    def records(self) -> list[tuple[str, NestedSet]]:
        rng = random.Random(8)
        atoms = [f"a{i}" for i in range(10)]
        return [(f"r{i}", random_tree(rng, atoms)) for i in range(30)]

    @pytest.mark.parametrize("kind", ["flat", "breadth", "depth"])
    def test_candidates_sound(self, kind: str, records) -> None:
        index = BloomIndex.build(records, kind=kind)
        rng = random.Random(9)
        atoms = [f"a{i}" for i in range(10)]
        for _ in range(40):
            query = random_tree(rng, atoms)
            candidates = index.candidates(query)
            assert candidates is not None
            survivors = {records[o][0] for o in candidates}
            for key, tree in records:
                if hom_contains(tree, query):
                    assert key in survivors

    def test_pruning_disabled_when_unsound(self, records) -> None:
        index = BloomIndex.build(records, kind="breadth")
        query = N(["a1"])
        assert index.candidates(query,
                                QuerySpec(semantics="homeo")) is None
        assert index.candidates(query,
                                QuerySpec(join="overlap")) is None
        assert index.candidates(query, QuerySpec(mode="anywhere")) is None
        flat = BloomIndex.build(records, kind="flat")
        assert flat.candidates(query, QuerySpec(mode="anywhere")) is not None

    def test_superset_direction_reversed(self, records) -> None:
        index = BloomIndex.build(records, kind="flat")
        rng = random.Random(11)
        atoms = [f"a{i}" for i in range(10)]
        query = random_tree(rng, atoms)
        candidates = index.candidates(query, QuerySpec(join="superset"))
        assert candidates is not None
        survivors = {records[o][0] for o in candidates}
        for key, tree in records:
            if hom_contains(query, tree):   # s ⊆ q
                assert key in survivors

    def test_unknown_kind(self) -> None:
        with pytest.raises(ValueError):
            BloomIndex(kind="quantum")

    def test_len(self, records) -> None:
        index = BloomIndex.build(records)
        assert len(index) == len(records)


class TestPersistence:
    def test_filter_codecs_roundtrip(self) -> None:
        from repro.core.bloom import decode_filter, encode_filter
        tree = N(["a"], [N(["b"], [N(["c"])])])
        for obj in (BloomFilter.for_tree(tree),
                    BreadthBloom.for_tree(tree),
                    DepthBloom.for_tree(tree)):
            decoded = decode_filter(encode_filter(obj))
            assert type(decoded) is type(obj)
            if isinstance(obj, BloomFilter):
                assert decoded.bits == obj.bits
            elif isinstance(obj, BreadthBloom):
                assert [l.bits for l in decoded.levels] == \
                    [l.bits for l in obj.levels]
            else:
                assert decoded.pairs.bits == obj.pairs.bits
                assert decoded.flat.bits == obj.flat.bits

    def test_encode_filter_rejects_other_types(self) -> None:
        from repro.core.bloom import decode_filter, encode_filter
        with pytest.raises(TypeError):
            encode_filter("not a filter")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            decode_filter(b"x???")

    @pytest.mark.parametrize("kind", ["flat", "breadth", "depth"])
    def test_save_load_store(self, kind: str) -> None:
        from repro.storage import MemoryKVStore
        rng = random.Random(31)
        atoms = [f"a{i}" for i in range(8)]
        records = [(f"r{i}", random_tree(rng, atoms)) for i in range(15)]
        index = BloomIndex.build(records, kind=kind)
        store = MemoryKVStore()
        index.save(store)
        loaded = BloomIndex.load(store)
        assert loaded is not None
        assert loaded.kind == kind
        assert len(loaded) == len(records)
        query = records[0][1]
        assert loaded.candidates(query) == index.candidates(query)

    def test_load_absent(self) -> None:
        from repro.storage import MemoryKVStore
        assert BloomIndex.load(MemoryKVStore()) is None

    def test_append_persisted(self) -> None:
        from repro.storage import MemoryKVStore
        store = MemoryKVStore()
        index = BloomIndex(kind="flat")
        index.save(store)
        index.append_persisted(store, N(["x"]))
        reloaded = BloomIndex.load(store)
        assert len(reloaded) == 1
        assert reloaded.candidates(N(["x"])) == [0]
