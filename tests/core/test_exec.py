"""Tests for the execution pipeline: compiler, plan, context, explain."""

from __future__ import annotations

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.exec import (
    ALGORITHMS,
    ExecCounters,
    ExecutionContext,
    ExecutionPlan,
    PlanError,
    compile_query,
    run_explained,
)
from repro.core.matchspec import QuerySpec, QuerySpecError
from repro.core.model import NestedSet

N = NestedSet


class TestCompile:
    def test_default_plan_shape(self) -> None:
        plan = compile_query("{a, {b}}")
        assert isinstance(plan, ExecutionPlan)
        assert plan.algorithm == "bottomup"
        assert plan.candidates.source == "inverted-file"
        assert plan.match.memoizable
        assert plan.prefilter.cache_key is not None
        assert not plan.prefilter.bloom
        assert plan.materialize.mode == "root"

    def test_topdown_plan_carries_planner(self) -> None:
        plan = compile_query("{a}", algorithm="topdown",
                             planner="selective-first")
        assert plan.match.strategy == "topdown"
        assert plan.match.planner == "selective-first"
        assert not plan.match.memoizable

    def test_naive_plan_scans_records(self) -> None:
        plan = compile_query("{a}", algorithm="naive", use_bloom=True)
        assert plan.candidates.source == "record-scan"
        assert plan.prefilter.bloom

    def test_non_cacheable_plan_has_no_key(self) -> None:
        plan = compile_query("{a}", cacheable=False)
        assert plan.prefilter.cache_key is None

    def test_spec_reaches_stages(self) -> None:
        spec = QuerySpec(join="overlap", epsilon=2, mode="anywhere")
        plan = compile_query("{a}", spec)
        assert plan.candidates.join == "overlap"
        assert plan.materialize.mode == "anywhere"
        assert plan.spec.epsilon == 2

    def test_plans_are_frozen(self) -> None:
        plan = compile_query("{a}")
        with pytest.raises(AttributeError):
            plan.query = N(["b"])  # type: ignore[misc]

    def test_describe_lists_stages(self) -> None:
        plan = compile_query("{a}", algorithm="topdown",
                             planner="selective-first")
        text = plan.describe()
        for fragment in ("prefilter:", "candidates:", "match:",
                         "materialize:", "selective-first"):
            assert fragment in text


class TestCompileValidation:
    def test_unknown_algorithm(self) -> None:
        with pytest.raises(PlanError, match="unknown algorithm"):
            compile_query("{a}", algorithm="magic")

    def test_plan_error_is_value_error(self) -> None:
        assert issubclass(PlanError, ValueError)

    def test_bloom_requires_naive(self) -> None:
        for algorithm in ("bottomup", "topdown", "topdown-paper"):
            with pytest.raises(PlanError, match="naive"):
                compile_query("{a}", algorithm=algorithm, use_bloom=True)

    def test_planner_requires_topdown(self) -> None:
        for algorithm in ("bottomup", "naive"):
            with pytest.raises(PlanError, match="top-down"):
                compile_query("{a}", algorithm=algorithm,
                              planner="selective-first")

    def test_unknown_planner_strategy(self) -> None:
        with pytest.raises(PlanError, match="unknown strategy"):
            compile_query("{a}", algorithm="topdown", planner="chaotic")

    def test_paper_variant_spec_limits(self) -> None:
        with pytest.raises(QuerySpecError):
            compile_query("{a}", QuerySpec(semantics="iso"),
                          algorithm="topdown-paper")
        with pytest.raises(QuerySpecError):
            compile_query("{a}", QuerySpec(join="superset"),
                          algorithm="topdown-paper")


class TestPlanRun:
    def test_run_matches_engine_query(self, paper_records,
                                      paper_query) -> None:
        index = NestedSetIndex.build(paper_records)
        plan = compile_query(paper_query)
        assert plan.run(index.execution_context()) == \
            index.query(paper_query)

    def test_match_nodes_rejected_for_naive(self, paper_records) -> None:
        index = NestedSetIndex.build(paper_records)
        plan = compile_query("{a}", algorithm="naive")
        with pytest.raises(PlanError, match="node-level"):
            plan.match_nodes(index.execution_context())

    def test_counters_accumulate(self, paper_records, paper_query) -> None:
        index = NestedSetIndex.build(paper_records)
        index.enable_result_cache()
        ctx = index.execution_context()
        plan = compile_query(paper_query)
        plan.run(ctx)
        plan.run(ctx)
        assert ctx.counters.queries == 2
        assert ctx.counters.result_cache_hits == 1
        assert ctx.counters.snapshot()["queries"] == 2

    def test_naive_counters(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus, bloom="flat")
        ctx = index.execution_context()
        plan = compile_query(small_corpus[0][1], algorithm="naive",
                             use_bloom=True)
        plan.run(ctx)
        tested = ctx.counters.records_tested
        skipped = ctx.counters.records_skipped
        assert tested + skipped == len(small_corpus)

    def test_shared_memo_reuses_subqueries(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        ctx = index.execution_context(memo={})
        query = small_corpus[0][1]
        plan = compile_query(query, cacheable=False)
        first = plan.run(ctx)
        evaluated = ctx.counters.subqueries_evaluated
        second = plan.run(ctx)
        assert first == second
        # The repeat is served entirely from the memo.
        assert ctx.counters.subqueries_evaluated == evaluated
        assert ctx.counters.subqueries_reused > 0

    def test_standalone_context_computes_stats(self, paper_records) -> None:
        index = NestedSetIndex.build(paper_records)
        ctx = ExecutionContext(ifile=index.inverted_file)
        stats = ctx.collection_stats()
        assert stats is ctx.collection_stats()  # memoized
        assert ctx.counters == ExecCounters()


class TestExplainEveryAlgorithm:
    """Acceptance criterion: explain works and agrees for all algorithms."""

    SPECS = [
        {},
        {"semantics": "homeo"},
        {"join": "overlap", "epsilon": 2},
        {"mode": "anywhere"},
    ]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_equal_uninstrumented_query(self, small_corpus,
                                                algorithm) -> None:
        index = NestedSetIndex.build(small_corpus)
        queries = [tree for _key, tree in small_corpus[:8]]
        for options in self.SPECS:
            for query in queries:
                result = index.explain(query, algorithm=algorithm,
                                       **options)
                assert result.matches == index.query(
                    query, algorithm=algorithm, **options), \
                    (algorithm, options, query)
                assert result.algorithm == algorithm

    def test_trace_tree_has_node_detail(self, paper_records,
                                        paper_query) -> None:
        index = NestedSetIndex.build(paper_records)
        for algorithm in ("bottomup", "topdown", "topdown-paper"):
            result = index.explain(paper_query, algorithm=algorithm)
            assert result.root.candidates is not None
            assert result.root.survivors is not None
            assert result.lists_fetched > 0
            assert algorithm in result.render()

    def test_explain_with_planner_and_bloom(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus, bloom="flat")
        query = small_corpus[0][1]
        planned = index.explain(query, algorithm="topdown",
                                planner="selective-first")
        assert planned.matches == index.query(query, algorithm="topdown")
        scanned = index.explain(query, algorithm="naive", use_bloom=True)
        assert scanned.matches == index.query(query, algorithm="naive")

    def test_explain_bypasses_result_cache(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        cache = index.enable_result_cache()
        query = small_corpus[0][1]
        index.query(query)
        result = index.explain(query)
        assert result.matches == index.query(query)
        assert cache.stats.hits == 1  # only the second query() hit

    def test_run_explained_on_raw_plan(self, paper_records,
                                       paper_query) -> None:
        index = NestedSetIndex.build(paper_records)
        plan = compile_query(paper_query, cacheable=False)
        result = run_explained(plan, index.execution_context())
        assert result.matches == index.query(paper_query)


class TestQueryBatch:
    def test_share_flag_does_not_change_results(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        queries = [tree for _key, tree in small_corpus[:20]]
        shared = index.query_batch(queries, share_subqueries=True)
        unshared = index.query_batch(queries, share_subqueries=False)
        per_query = [index.query(q) for q in queries]
        assert shared == unshared == per_query

    def test_share_ignored_for_non_memoizable(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        queries = [tree for _key, tree in small_corpus[:5]]
        topdown = index.query_batch(queries, algorithm="topdown",
                                    share_subqueries=True)
        assert topdown == [index.query(q, algorithm="topdown")
                           for q in queries]

    def test_containment_join_facade(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        queries = [(f"q{i}", tree)
                   for i, (_key, tree) in enumerate(small_corpus[:10])]
        pairs = index.containment_join(queries)
        expected = [(qkey, skey) for qkey, tree in queries
                    for skey in index.query(tree)]
        assert pairs == expected
