"""Tests for QuerySpec validation."""

from __future__ import annotations

import pytest

from repro.core.matchspec import QuerySpec, QuerySpecError


class TestValidation:
    def test_defaults(self) -> None:
        spec = QuerySpec()
        assert spec.semantics == "hom"
        assert spec.join == "subset"
        assert spec.epsilon == 1
        assert spec.mode == "root"
        assert spec.is_default

    def test_valid_combinations(self) -> None:
        QuerySpec(semantics="iso")
        QuerySpec(semantics="homeo", mode="anywhere")
        QuerySpec(join="overlap", epsilon=3)
        QuerySpec(join="superset")

    @pytest.mark.parametrize("kwargs", [
        {"semantics": "psychic"},
        {"join": "antijoin"},
        {"mode": "everywhere"},
        {"epsilon": 0},
        {"epsilon": 2},                          # epsilon without overlap
        {"join": "superset", "semantics": "iso"},
        {"join": "equality", "semantics": "homeo"},
    ])
    def test_invalid(self, kwargs: dict) -> None:
        with pytest.raises(QuerySpecError):
            QuerySpec(**kwargs)

    def test_frozen(self) -> None:
        spec = QuerySpec()
        with pytest.raises(AttributeError):
            spec.join = "equality"  # type: ignore[misc]

    def test_non_default(self) -> None:
        assert not QuerySpec(mode="anywhere").is_default
        assert not QuerySpec(join="equality").is_default
