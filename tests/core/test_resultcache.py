"""Tests for whole-query result caching."""

from __future__ import annotations

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.model import NestedSet
from repro.core.resultcache import ResultCache, make_key

N = NestedSet


class TestResultCacheUnit:
    def test_miss_then_hit(self) -> None:
        cache = ResultCache()
        key = make_key(N(["a"]), "bottomup", "hom", "subset", 1, "root")
        assert cache.get(key) is None
        cache.put(key, ["r1", "r2"])
        assert cache.get(key) == ["r1", "r2"]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_returned_lists_are_copies(self) -> None:
        cache = ResultCache()
        key = make_key(N(["a"]), "bottomup", "hom", "subset", 1, "root")
        cache.put(key, ["r1"])
        cache.get(key).append("tampered")
        assert cache.get(key) == ["r1"]

    def test_lru_eviction(self) -> None:
        cache = ResultCache(capacity=2)
        keys = [make_key(N([f"a{i}"]), "bottomup", "hom", "subset", 1,
                         "root") for i in range(3)]
        cache.put(keys[0], [])
        cache.put(keys[1], [])
        cache.get(keys[0])          # refresh 0; 1 becomes LRU
        cache.put(keys[2], [])
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None

    def test_options_distinguish_entries(self) -> None:
        cache = ResultCache()
        query = N(["a"])
        cache.put(make_key(query, "bottomup", "hom", "subset", 1, "root"),
                  ["x"])
        other = make_key(query, "bottomup", "hom", "subset", 1, "anywhere")
        assert cache.get(other) is None

    def test_invalidate_all(self) -> None:
        cache = ResultCache()
        key = make_key(N(["a"]), "bottomup", "hom", "subset", 1, "root")
        cache.put(key, ["r"])
        cache.invalidate_all()
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1

    def test_capacity_validation(self) -> None:
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestEngineIntegration:
    def test_repeat_queries_hit(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        cache = index.enable_result_cache()
        query = small_corpus[0][1]
        first = index.query(query)
        second = index.query(query)
        assert first == second
        assert cache.stats.hits == 1

    def test_results_correct_after_updates(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        index.enable_result_cache()
        query = N(["a1"])
        before = index.query(query)
        index.insert("fresh", N(["a1", "unique"]))
        after = index.query(query)
        assert "fresh" in after
        assert set(after) == set(before) | {"fresh"}
        victim = after[0]
        index.delete(victim)
        assert victim not in index.query(query)

    def test_bloom_and_planner_queries_are_cached(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus, bloom="flat")
        cache = index.enable_result_cache()
        query = small_corpus[0][1]
        first = index.query(query, algorithm="naive", use_bloom=True)
        second = index.query(query, algorithm="topdown",
                             planner="selective-first")
        # Distinct options -> distinct keys: two misses, no cross-talk.
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0
        # Repeats with identical options hit their own entries.
        assert index.query(query, algorithm="naive", use_bloom=True) == first
        assert index.query(query, algorithm="topdown",
                           planner="selective-first") == second
        assert cache.stats.hits == 2

    def test_bloom_flag_keys_separately(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus, bloom="flat")
        cache = index.enable_result_cache()
        query = small_corpus[0][1]
        with_bloom = index.query(query, algorithm="naive", use_bloom=True)
        without = index.query(query, algorithm="naive", use_bloom=False)
        assert with_bloom == without
        assert cache.stats.misses == 2

    def test_disable(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        cache = index.enable_result_cache()
        index.query("{a1}")
        index.disable_result_cache()
        index.query("{a1}")
        assert cache.stats.requests == 1
