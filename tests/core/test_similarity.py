"""Tests for nested-set similarity search."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.invfile import InvertedFile
from repro.core.model import NestedSet
from repro.core.semantics import hom_contains
from repro.core.similarity import (
    SimilaritySearch,
    nested_jaccard,
    top_k_similar,
)
from tests.conftest import random_tree

N = NestedSet


def small_trees():
    atoms = st.sampled_from(["a", "b", "c", "d"])
    return st.recursive(
        st.builds(lambda a: N(a), st.lists(atoms, max_size=3)),
        lambda kids: st.builds(lambda a, c: N(a, c),
                               st.lists(atoms, max_size=2),
                               st.lists(kids, max_size=2)),
        max_leaves=8)


class TestNestedJaccard:
    def test_identity(self) -> None:
        tree = N(["a"], [N(["b"], [N(["c"])])])
        assert nested_jaccard(tree, tree) == 1.0

    def test_both_empty(self) -> None:
        assert nested_jaccard(N(), N()) == 1.0

    def test_disjoint(self) -> None:
        assert nested_jaccard(N(["a"]), N(["b"])) == 0.0

    def test_flat_matches_plain_jaccard(self) -> None:
        left = N(["a", "b", "c"])
        right = N(["b", "c", "d"])
        assert nested_jaccard(left, right) == pytest.approx(2 / 4)

    def test_structure_matters(self) -> None:
        nested = N(["a"], [N(["b"])])
        flat = N(["a", "b"])
        same = N(["a"], [N(["b"])])
        assert nested_jaccard(nested, same) > nested_jaccard(nested, flat)

    def test_greedy_matching_pairs_best_children(self) -> None:
        left = N([], [N(["x", "y"]), N(["z"])])
        right = N([], [N(["z"]), N(["x", "y"])])
        assert nested_jaccard(left, right) == 1.0

    @settings(max_examples=120)
    @given(small_trees(), small_trees())
    def test_symmetric_and_bounded(self, a: NestedSet, b: NestedSet) -> None:
        forward = nested_jaccard(a, b)
        assert forward == pytest.approx(nested_jaccard(b, a))
        assert 0.0 <= forward <= 1.0

    @settings(max_examples=120)
    @given(small_trees())
    def test_reflexive(self, tree: NestedSet) -> None:
        assert nested_jaccard(tree, tree) == pytest.approx(1.0)

    @settings(max_examples=100)
    @given(small_trees(), small_trees())
    def test_containment_implies_positive(self, data, query) -> None:
        # Holds when every query level shares at least one atom with its
        # match, i.e. for queries with non-empty leaf sets throughout
        # (an atom-free subtree shares nothing, so Jaccard is rightly 0).
        has_atoms_everywhere = all(node.atoms
                                   for node in query.iter_sets())
        if has_atoms_everywhere and hom_contains(data, query):
            assert nested_jaccard(query, data) > 0.0


class TestTopK:
    @pytest.fixture
    def index(self, small_corpus) -> InvertedFile:
        return InvertedFile.build(small_corpus)

    def test_self_is_top_hit(self, small_corpus, index) -> None:
        for key, tree in small_corpus[:10]:
            hits = top_k_similar(index, tree, k=1)
            assert hits[0][1] == pytest.approx(1.0)
            top_keys = {k for k, score in
                        top_k_similar(index, tree, k=5)
                        if score == pytest.approx(1.0)}
            assert key in top_keys

    def test_scores_descending(self, index) -> None:
        hits = top_k_similar(index, N(["a1", "a2", "a3"]), k=10)
        scores = [score for _key, score in hits]
        assert scores == sorted(scores, reverse=True)

    def test_exhaustive_matches_bruteforce(self, small_corpus,
                                           index) -> None:
        rng = random.Random(21)
        atoms = [f"a{i}" for i in range(12)]
        query = random_tree(rng, atoms)
        brute = sorted(((nested_jaccard(query, tree), key)
                        for key, tree in small_corpus
                        if nested_jaccard(query, tree) > 0),
                       key=lambda item: (-item[0], item[1]))[:5]
        hits = top_k_similar(index, query, k=5,
                             candidate_limit=len(small_corpus))
        assert [(key, pytest.approx(score)) for score, key in brute] == \
            [(key, pytest.approx(score)) for key, score in hits]

    def test_disjoint_query_no_hits(self, index) -> None:
        assert top_k_similar(index, N(["__alien__"]), k=3) == []

    def test_candidate_limit_respected(self, index) -> None:
        search = SimilaritySearch(index, candidate_limit=5)
        search.top_k(N(["a1"]), k=3)
        assert search.candidates_scored <= 5

    def test_deleted_records_excluded(self, small_corpus) -> None:
        from repro.core.updates import IndexWriter
        index = InvertedFile.build(small_corpus)
        key, tree = small_corpus[0]
        IndexWriter(index).delete(key)
        hits = top_k_similar(index, tree, k=len(small_corpus))
        assert key not in {k for k, _score in hits}

    def test_k_validation(self, index) -> None:
        with pytest.raises(ValueError):
            top_k_similar(index, N(["a1"]), k=0)
