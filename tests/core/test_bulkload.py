"""Tests for the external-memory (run-merge) index builder."""

from __future__ import annotations

import pytest

from repro.bench.workloads import generate_dataset
from repro.core.bulkload import build_external
from repro.core.checker import assert_healthy
from repro.core.engine import NestedSetIndex
from repro.core.invfile import InvertedFile
from repro.core.topdown import topdown_match_nodes
from repro.data.queries import make_benchmark_queries


@pytest.fixture(scope="module")
def records():
    return list(generate_dataset("zipf-wide", 400, seed=6, theta=0.8))


@pytest.fixture(scope="module")
def reference(records) -> InvertedFile:
    return InvertedFile.build(records)


class TestEquivalence:
    @pytest.mark.parametrize("budget", [50, 1000, 10 ** 9],
                             ids=["many-runs", "few-runs", "single-run"])
    def test_same_index_any_budget(self, records, reference,
                                   budget: int) -> None:
        index = build_external(records, memory_budget=budget)
        assert index.n_records == reference.n_records
        assert index.n_nodes == reference.n_nodes
        assert index.frequencies() == reference.frequencies()
        for atom, _df in reference.frequencies()[:100]:
            assert index.postings(atom) == reference.postings(atom)
        assert_healthy(index)

    def test_query_results_identical(self, records, reference) -> None:
        index = build_external(records, memory_budget=64)
        workload = make_benchmark_queries(records, 25, seed=6)
        for bench in workload:
            expect = reference.heads_to_keys(
                topdown_match_nodes(bench.query, reference))
            assert index.heads_to_keys(
                topdown_match_nodes(bench.query, index)) == expect

    def test_run_values_cleaned_up(self, records) -> None:
        index = build_external(records, memory_budget=50)
        leftovers = [key for key in index.store.keys()
                     if key.startswith(b"T:")]
        assert leftovers == []

    def test_segmented_external_build(self, records, reference) -> None:
        index = build_external(records, memory_budget=64, segment_size=32)
        assert index.segment_size == 32
        for atom, _df in reference.frequencies()[:30]:
            assert index.postings(atom) == reference.postings(atom)
        assert_healthy(index)

    def test_disk_engine(self, tmp_path, records, reference) -> None:
        path = str(tmp_path / "bulk.idx")
        built = build_external(records, storage="diskhash", path=path,
                               memory_budget=100)
        built.close()
        reopened = InvertedFile.open("diskhash", path)
        assert reopened.n_records == reference.n_records
        hottest = reference.frequencies()[0][0]
        assert reopened.postings(hottest) == reference.postings(hottest)
        reopened.close()

    def test_budget_validation(self, records) -> None:
        with pytest.raises(ValueError):
            build_external(records, memory_budget=0)

    def test_engine_integration(self, records) -> None:
        index = NestedSetIndex.build_external(records, memory_budget=128)
        plain = NestedSetIndex.build(records)
        query = records[7][1]
        assert index.query(query) == plain.query(query)
