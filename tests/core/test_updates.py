"""Tests for incremental index maintenance (insert / delete / compact)."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.naive import reference_query
from repro.core.updates import IndexWriter, UpdateError
from tests.conftest import random_tree

N = NestedSet


def check_against(index: NestedSetIndex,
                  model: list[tuple[str, NestedSet]],
                  seed: str, trials: int = 30) -> None:
    """Every algorithm must agree with the oracle over ``model``."""
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(12)]
    for _ in range(trials):
        query = random_tree(rng, atoms)
        expected = reference_query(model, query, QuerySpec())
        assert index.query(query) == expected
        assert index.query(query, algorithm="topdown") == expected
        assert index.query(query, algorithm="naive") == expected


class TestInsert:
    def test_insert_becomes_queryable(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        tree = N(["a1", "freshatom"], [N(["a2"])])
        ordinal = index.insert("newbie", tree)
        assert ordinal == len(small_corpus)
        assert "newbie" in index.query(tree)
        assert index.query(N(["freshatom"])) == ["newbie"]
        check_against(index, small_corpus + [("newbie", tree)], "ins")

    def test_insert_several(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        rng = random.Random(3)
        atoms = [f"a{i}" for i in range(12)]
        added = [(f"x{i}", random_tree(rng, atoms)) for i in range(10)]
        for key, tree in added:
            index.insert(key, tree)
        check_against(index, small_corpus + added, "many")

    def test_duplicate_key_rejected(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        with pytest.raises(UpdateError):
            index.insert(small_corpus[0][0], N(["a1"]))

    def test_insert_updates_counts_and_stats(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        nodes_before = index.n_nodes
        index.insert("n1", N(["a1"], [N(["a2"])]))
        assert index.n_records == len(small_corpus) + 1
        assert index.n_nodes == nodes_before + 2
        # frequency table refreshed (engine flushes the writer)
        stats = index.collection_stats()
        df = dict(index.inverted_file.frequencies())
        assert stats.document_frequency("a1") == df["a1"]

    def test_preorder_invariants_after_insert(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        index.insert("n1", N(["a1"], [N(["a2"], [N(["a3"])])]))
        ifile = index.inverted_file
        ordinal = ifile.ordinal_of_key("n1")
        _key, root_id, tree = ifile.record(ordinal)
        meta = ifile.meta(root_id)
        assert meta.is_root
        assert meta.max_desc - root_id + 1 == tree.internal_count

    def test_insert_into_reopened_disk_index(self, tmp_path,
                                             small_corpus) -> None:
        path = str(tmp_path / "u.idx")
        NestedSetIndex.build(small_corpus, storage="diskhash",
                             path=path).close()
        index = NestedSetIndex.open("diskhash", path)
        tree = N(["diskfresh"])
        index.insert("disk1", tree)
        index.close()
        reopened = NestedSetIndex.open("diskhash", path)
        assert reopened.query(tree) == ["disk1"]
        reopened.close()


class TestDelete:
    def test_delete_hides_record(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        victim_key, victim_tree = small_corpus[7]
        assert index.delete(victim_key) is True
        assert victim_key not in index.query(victim_tree)
        model = [r for r in small_corpus if r[0] != victim_key]
        check_against(index, model, "del")

    def test_delete_missing(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        assert index.delete("ghost") is False

    def test_delete_then_reinsert_key(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        key = small_corpus[0][0]
        index.delete(key)
        tree = N(["reborn"])
        index.insert(key, tree)
        assert index.query(tree) == [key]

    def test_deleted_set_persists(self, tmp_path, small_corpus) -> None:
        path = str(tmp_path / "d.idx")
        index = NestedSetIndex.build(small_corpus, storage="btree",
                                     path=path)
        index.delete(small_corpus[3][0])
        index.close()
        reopened = NestedSetIndex.open("btree", path)
        assert small_corpus[3][0] not in \
            reopened.query(small_corpus[3][1])
        assert reopened.inverted_file.n_live_records == \
            len(small_corpus) - 1
        reopened.close()

    def test_live_record_count(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        index.delete(small_corpus[0][0])
        index.delete(small_corpus[1][0])
        assert index.inverted_file.n_live_records == len(small_corpus) - 2

    def test_delete_invalidates_blocked_caches(self, small_corpus) -> None:
        """Regression: after a tombstone delete, queries over a
        block-compressed index must not answer from cached decodings of
        the dead record's posting lists."""
        index = NestedSetIndex.build(small_corpus, block_size=4)
        victim_key, victim_tree = small_corpus[5]
        # Warm the block/list caches with the victim's own atoms.
        assert victim_key in index.query(victim_tree)
        index.query(victim_tree, algorithm="topdown")
        assert index.delete(victim_key) is True
        assert victim_key not in index.query(victim_tree)
        model = [r for r in small_corpus if r[0] != victim_key]
        check_against(index, model, "blocked-del")

    def test_delete_refreshes_collection_stats(self, small_corpus) -> None:
        """Regression: the memoized planner statistics must be rebuilt
        after a delete, mirroring what insert already did."""
        index = NestedSetIndex.build(small_corpus)
        victim_key, victim_tree = small_corpus[4]
        atom = next(iter(next(victim_tree.iter_sets()).atoms))
        before = index.collection_stats()  # memoize pre-delete
        df_before = before.document_frequency(atom)
        assert df_before > 0
        assert index.delete(victim_key) is True
        after = index.collection_stats()
        assert after is not before
        assert after.n_records == before.n_records - 1
        assert after.document_frequency(atom) < df_before


class TestCompact:
    def test_compact_drops_tombstones(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        index.delete(small_corpus[2][0])
        index.insert("extra", N(["a1", "a9"]))
        index.compact()
        model = [r for r in small_corpus if r[0] != small_corpus[2][0]]
        model.append(("extra", N(["a1", "a9"])))
        assert index.n_records == len(model)
        assert not index.inverted_file.deleted
        check_against(index, model, "compact")

    def test_compact_refreshes_frequencies(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        before = dict(index.inverted_file.frequencies())
        # delete every record containing a1 at the root, then compact
        victims = index.query(N(["a1"]))
        for key in victims:
            index.delete(key)
        index.compact()
        after = dict(index.inverted_file.frequencies())
        assert after.get("a1", 0) < before["a1"]


class TestWriterDirect:
    def test_writer_flush_idempotent(self, small_corpus) -> None:
        ifile = InvertedFile.build(small_corpus)
        writer = IndexWriter(ifile)
        writer.insert("w1", N(["a1"]))
        writer.flush()
        writer.flush()  # no-op
        assert dict(ifile.frequencies())["a1"] > 0

    def test_insert_many(self, small_corpus) -> None:
        ifile = InvertedFile.build(small_corpus)
        writer = IndexWriter(ifile)
        ordinals = writer.insert_many([("m1", N(["a1"])),
                                       ("m2", N(["a2"]))])
        assert ordinals == [len(small_corpus), len(small_corpus) + 1]
