"""Tests for the nested sequence (ordered list) data model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bags import bag_contains
from repro.core.engine import NestedSetIndex
from repro.core.model import NestedSetError
from repro.core.semantics import hom_contains
from repro.core.seqs import (
    NestedSeq,
    json_to_nested_seq,
    seq_contains,
    seq_filter_verify,
    seq_reference_query,
)

S = NestedSeq


def small_seqs():
    atoms = st.sampled_from(["a", "b", "c"])
    return st.recursive(
        st.builds(S, st.lists(atoms, max_size=4)),
        lambda kids: st.builds(
            lambda members: S(members),
            st.lists(st.one_of(atoms, kids), max_size=4)),
        max_leaves=10)


class TestModel:
    def test_order_matters(self) -> None:
        assert S(["a", "b"]) != S(["b", "a"])
        assert S(["a", S(["b"]), "c"]) != S(["a", "c", S(["b"])])

    def test_duplicates_kept(self) -> None:
        seq = S(["a", "a"])
        assert len(seq) == 2

    def test_member_views(self) -> None:
        seq = S(["a", S(["b"]), "c", S([])])
        assert seq.atoms == ("a", "c")
        assert len(seq.children) == 2
        assert list(seq)[0] == "a"

    def test_from_obj_requires_order(self) -> None:
        assert S.from_obj(["a", ["b"], "a"]) == S(["a", S(["b"]), "a"])
        with pytest.raises(NestedSetError):
            S.from_obj({"a"})  # sets have no order

    def test_member_validation(self) -> None:
        with pytest.raises(NestedSetError):
            S([3.5])

    def test_parse_brackets(self) -> None:
        seq = S.parse("[a, [b, c], a]")
        assert seq == S(["a", S(["b", "c"]), "a"])

    def test_parse_errors(self) -> None:
        with pytest.raises(NestedSetError):
            S.parse("[a")
        with pytest.raises(NestedSetError):
            S.parse("[a] junk")

    @settings(max_examples=100)
    @given(small_seqs())
    def test_text_roundtrip(self, seq: NestedSeq) -> None:
        assert S.parse(seq.to_text()) == seq

    def test_projections(self) -> None:
        seq = S(["a", "a", S(["b"]), S(["b"])])
        bag = seq.to_bag()
        assert bag.multiplicity("a") == 2
        tree = seq.to_set()
        assert tree.atoms == {"a"}
        assert len(tree.children) == 1

    def test_iter_seqs(self) -> None:
        seq = S(["a", S(["b", S(["c"])])])
        assert len(list(seq.iter_seqs())) == 3


class TestSeqContainment:
    def test_subsequence(self) -> None:
        data = S(["a", "b", "c", "d"])
        assert seq_contains(data, S(["a", "c"]))
        assert seq_contains(data, S(["b", "d"]))
        assert not seq_contains(data, S(["c", "a"]))  # order violated

    def test_duplicates_need_enough_copies(self) -> None:
        assert seq_contains(S(["a", "b", "a"]), S(["a", "a"]))
        assert not seq_contains(S(["a", "b"]), S(["a", "a"]))

    def test_nested(self) -> None:
        data = S(["x", S(["a", "b"]), "y", S(["c"])])
        assert seq_contains(data, S([S(["a"]), S(["c"])]))
        assert not seq_contains(data, S([S(["c"]), S(["a"])]))

    def test_greedy_is_exact(self) -> None:
        # Greedy must not burn the only [a, b] witness on a plain [a].
        data = S([S(["a", "b"]), S(["a"])])
        query = S([S(["a"]), S(["a"])])
        assert seq_contains(data, query)
        harder = S([S(["a"]), S(["a", "b"])])
        assert seq_contains(data, S([S(["a", "b"])]))
        assert not seq_contains(harder, S([S(["a", "b"]), S(["a", "b"])]))

    def test_empty_query(self) -> None:
        assert seq_contains(S(["a"]), S())
        assert seq_contains(S(), S())

    @settings(max_examples=120)
    @given(small_seqs())
    def test_reflexive(self, seq: NestedSeq) -> None:
        assert seq_contains(seq, seq)

    @settings(max_examples=120)
    @given(small_seqs(), small_seqs())
    def test_abstraction_chain(self, data, query) -> None:
        # seq containment ⇒ bag containment ⇒ set-hom containment
        if seq_contains(data, query):
            assert bag_contains(data.to_bag(), query.to_bag())
            assert hom_contains(data.to_set(), query.to_set())

    @settings(max_examples=100)
    @given(small_seqs(), small_seqs())
    def test_prefix_always_contained(self, data, extra) -> None:
        grown = S(data.members + extra.members)
        assert seq_contains(grown, data)


class TestFilterVerify:
    def test_equals_reference_scan(self) -> None:
        rng = random.Random(13)
        atoms = ["a", "b", "c", "d"]

        def rand_seq(depth: int = 0) -> NestedSeq:
            members: list = []
            for _ in range(rng.randint(1, 5)):
                if depth < 2 and rng.random() < 0.3:
                    members.append(rand_seq(depth + 1))
                else:
                    members.append(rng.choice(atoms))
            return S(members)

        seq_records = {f"r{i:02d}": rand_seq() for i in range(40)}
        index = NestedSetIndex.build(
            (key, seq.to_set()) for key, seq in seq_records.items())
        for _ in range(40):
            query = rand_seq()
            expect = seq_reference_query(seq_records.items(), query)
            got = sorted(seq_filter_verify(index, seq_records, query))
            assert got == expect


class TestJsonSeq:
    def test_array_order_preserved(self) -> None:
        left = json_to_nested_seq({"steps": ["wash", "rinse", "repeat"]})
        right = json_to_nested_seq({"steps": ["repeat", "rinse", "wash"]})
        assert left != right
        from repro.data.json_adapter import json_to_nested
        assert json_to_nested({"steps": ["wash", "rinse", "repeat"]}) == \
            json_to_nested({"steps": ["repeat", "rinse", "wash"]})

    def test_field_markers(self) -> None:
        seq = json_to_nested_seq({"user": {"name": "sue"}})
        (child,) = seq.children
        assert child.members[0] == "@user"

    def test_scalar(self) -> None:
        assert json_to_nested_seq(5) == S([5])
