"""The prefix-tree join strategy: equivalence, dispatch, counters.

``strategy="prefix"`` must return byte-identical pairs to the
per-query loop for every valid semantics x join combination, every
per-query algorithm, and both monolithic and sharded layouts --
including workloads with duplicate query keys and queries with zero
matches.  The adaptive dispatcher's decisions and the prefix counters
are covered alongside the join-path bugfixes (use_bloom no longer
silently dropped, ``self_join`` threading its knobs,
``JoinResult.grouped`` keeping empty queries).
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import NestedSetIndex
from repro.core.exec.context import ExecCounters
from repro.core.join import STRATEGIES, containment_join, self_join
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.prefixjoin import PrefixTree, choose_strategy
from repro.core.shard import ShardedIndex

from ..conftest import random_tree

#: Every semantics x join combination QuerySpec accepts.
VALID_COMBOS = [
    ("hom", "subset"),
    ("hom", "equality"),
    ("hom", "superset"),
    ("hom", "overlap"),
    ("iso", "subset"),
    ("homeo", "subset"),
]


def _corpus(seed: int, n: int = 50) -> list[tuple[str, NestedSet]]:
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    return [(f"r{i:02d}", random_tree(rng, atoms)) for i in range(n)]


def _workload(seed: int, corpus) -> list[tuple[str, NestedSet]]:
    """Queries sampled from the corpus plus edge cases: duplicate keys,
    duplicate trees, and a query matching nothing."""
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    queries = [(f"q{i}", tree) for i, (_key, tree)
               in enumerate(corpus[:12])]
    queries += [(f"g{i}", random_tree(rng, atoms, allow_empty=False))
                for i in range(8)]
    queries += [("dup", corpus[0][1]), ("dup", corpus[1][1])]
    queries.append(("empty", NestedSet(atoms)))  # needs all 10 atoms
    return queries


def _build(corpus, shards: int):
    if shards == 1:
        return NestedSetIndex.build(corpus)
    return ShardedIndex.build(corpus, shards=shards)


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("semantics,join", VALID_COMBOS)
class TestPrefixEquivalence:
    def test_matches_per_query(self, shards, semantics, join) -> None:
        corpus = _corpus(11)
        index = _build(corpus, shards)
        queries = _workload(12, corpus)
        spec = QuerySpec(semantics=semantics, join=join,
                         epsilon=2 if join == "overlap" else 1)
        expect = containment_join(index, queries, strategy="per-query",
                                  spec=spec)
        got = containment_join(index, queries, strategy="prefix",
                               spec=spec)
        assert got.pairs == expect.pairs
        assert got.strategy == "prefix"
        assert got.query_keys == expect.query_keys

    def test_anywhere_mode(self, shards, semantics, join) -> None:
        corpus = _corpus(21)
        index = _build(corpus, shards)
        queries = _workload(22, corpus)
        spec = QuerySpec(semantics=semantics, join=join, mode="anywhere")
        expect = containment_join(index, queries, strategy="per-query",
                                  spec=spec)
        got = containment_join(index, queries, strategy="prefix",
                               spec=spec)
        assert got.pairs == expect.pairs


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("algorithm",
                         ["bottomup", "topdown", "naive"])
def test_prefix_matches_every_algorithm(shards, algorithm) -> None:
    corpus = _corpus(31)
    index = _build(corpus, shards)
    queries = _workload(32, corpus)
    expect = containment_join(index, queries, strategy="per-query",
                              algorithm=algorithm)
    got = containment_join(index, queries, strategy="prefix")
    assert got.pairs == expect.pairs


class TestCounters:
    def test_extra_reports_prefix_counters(self) -> None:
        corpus = _corpus(41)
        index = NestedSetIndex.build(corpus)
        queries = _workload(42, corpus)
        # Duplicate the workload so reuse is guaranteed.
        result = containment_join(index, queries + queries,
                                  strategy="prefix")
        assert result.extra["prefix_nodes"] > 0
        assert result.extra["prefix_streams"] > 0
        assert result.extra["prefix_reused"] > 0
        assert result.extra["subqueries_reused"] > 0

    def test_counters_surface_in_sharded_stats(self) -> None:
        corpus = _corpus(43)
        index = ShardedIndex.build(corpus, shards=2)
        queries = _workload(44, corpus)
        containment_join(index, queries, strategy="prefix")
        exec_stats = index.stats()["shards"]["exec"]
        assert exec_stats["prefix_nodes"] > 0
        assert exec_stats["prefix_streams"] > 0

    def test_counters_merge(self) -> None:
        a = ExecCounters(prefix_nodes=2, prefix_streams=3, prefix_reused=1)
        b = ExecCounters(prefix_nodes=5, prefix_streams=1, prefix_reused=4)
        total = ExecCounters.merged([a, b])
        snap = total.snapshot()
        assert snap["prefix_nodes"] == 7
        assert snap["prefix_streams"] == 4
        assert snap["prefix_reused"] == 5


class TestPrefixTree:
    def test_shared_prefix_streamed_once(self) -> None:
        corpus = [(f"r{i}", NestedSet([f"a{j}" for j in range(i + 1)]))
                  for i in range(6)]
        index = NestedSetIndex.build(corpus)
        counters = ExecCounters()
        tree = PrefixTree(index.inverted_file, counters)
        # Rare-first order: df(a5)=1 < df(a4)=2 < ... < df(a0)=6, so
        # both sets share the trie prefix a5 -> a4.
        first = tree.candidates(frozenset(["a5", "a4", "a0"]))
        streams_after_first = counters.prefix_streams
        # Same 2-atom prefix: exactly one additional list streamed.
        tree.candidates(frozenset(["a5", "a4", "a1"]))
        assert counters.prefix_streams == streams_after_first + 1
        # Identical set: no stream at all, one reuse.
        tree.candidates(frozenset(["a5", "a4", "a0"]))
        assert counters.prefix_streams == streams_after_first + 1
        assert counters.prefix_reused == 1
        assert {p for p, _ in first} \
            == index.inverted_file.intersect_atoms(
                ["a5", "a4", "a0"]).heads()

    def test_empty_prefix_prunes_without_streaming(self) -> None:
        corpus = [("r0", NestedSet(["m", "x"])), ("r1", NestedSet(["m", "y"]))]
        index = NestedSetIndex.build(corpus)
        counters = ExecCounters()
        tree = PrefixTree(index.inverted_file, counters)
        # Rare-first order puts x and y (df 1) before m (df 2); they
        # never co-occur, so the partial intersection is empty after two
        # streams and m's longer list is never fetched.
        assert len(tree.candidates(frozenset(["m", "x", "y"]))) == 0
        assert counters.prefix_streams == 2


class TestAdaptiveDispatch:
    def test_small_workload_goes_per_query(self) -> None:
        corpus = _corpus(51)
        index = NestedSetIndex.build(corpus)
        queries = [(f"q{i}", tree) for i, (_k, tree)
                   in enumerate(corpus[:4])]
        result = containment_join(index, queries, strategy="adaptive")
        assert result.extra["dispatch"]["chosen"] == "per-query"
        expect = containment_join(index, queries, strategy="per-query")
        assert result.pairs == expect.pairs

    def test_shared_workload_goes_prefix(self) -> None:
        corpus = _corpus(52)
        index = NestedSetIndex.build(corpus)
        queries = [(f"q{i}", corpus[i % 5][1]) for i in range(40)]
        result = containment_join(index, queries, strategy="adaptive")
        assert result.extra["dispatch"]["chosen"] == "prefix"
        assert result.extra["prefix_reused"] > 0
        expect = containment_join(index, queries, strategy="per-query")
        assert result.pairs == expect.pairs

    def test_disjoint_workload_goes_per_query(self) -> None:
        rng = random.Random(53)
        atoms = [f"b{i}" for i in range(400)]
        corpus = [(f"r{i}", NestedSet(rng.sample(atoms, 4)))
                  for i in range(60)]
        index = NestedSetIndex.build(corpus)
        # Disjoint alphabets per query: no shared prefixes anywhere.
        queries = [(f"q{i}", NestedSet(atoms[4 * i:4 * i + 4]))
                   for i in range(40)]
        result = containment_join(index, queries, strategy="adaptive")
        assert result.extra["dispatch"]["chosen"] == "per-query"

    def test_choose_strategy_evidence(self) -> None:
        corpus = _corpus(54)
        index = NestedSetIndex.build(corpus)
        stats = index.collection_stats()
        trees = [tree for _k, tree in corpus[:2]] * 20
        chosen, info = choose_strategy(trees, stats)
        assert chosen == "prefix"
        assert info["n_queries"] == 40
        assert 0.0 <= info["sharing"] <= 1.0
        assert info["trie_volume"] <= info["loop_volume"]


class TestJoinPathBugfixes:
    def test_use_bloom_rejected_not_dropped(self) -> None:
        """Non-naive strategies raise instead of silently ignoring."""
        corpus = _corpus(61)
        index = NestedSetIndex.build(corpus, bloom="flat")
        queries = _workload(62, corpus)
        for strategy in ("per-query", "batched", "prefix"):
            with pytest.raises(ValueError):
                containment_join(index, queries, strategy=strategy,
                                 use_bloom=True)
        ok = containment_join(index, queries, strategy="naive",
                              use_bloom=True)
        expect = containment_join(index, queries, strategy="per-query")
        assert ok.pairs == expect.pairs

    def test_self_join_threads_algorithm(self) -> None:
        corpus = _corpus(63, n=20)
        index = NestedSetIndex.build(corpus, bloom="flat")
        expect = set(self_join(index).pairs)
        for strategy, algorithm in (("per-query", "topdown"),
                                    ("per-query", "naive"),
                                    ("prefix", "bottomup")):
            result = self_join(index, strategy=strategy,
                               algorithm=algorithm)
            assert set(result.pairs) == expect
        # The naive algorithm's record counters prove the knob arrived.
        naive = self_join(index, strategy="per-query", algorithm="naive")
        assert set(naive.pairs) == expect
        # use_bloom threads through too (and still errors for others).
        bloomed = self_join(index, strategy="naive", use_bloom=True)
        assert set(bloomed.pairs) == expect
        with pytest.raises(ValueError):
            self_join(index, strategy="batched", use_bloom=True)

    def test_grouped_keeps_empty_queries(self) -> None:
        corpus = _corpus(64)
        index = NestedSetIndex.build(corpus)
        unmatchable = NestedSet([f"a{i}" for i in range(10)])
        queries = [("hit", corpus[0][1]), ("miss", unmatchable)]
        for strategy in ("per-query", "prefix", "batched", "naive"):
            grouped = containment_join(index, queries,
                                       strategy=strategy).grouped()
            assert grouped["miss"] == []
            assert "hit" in grouped and grouped["hit"]
            assert list(grouped) == ["hit", "miss"]


def test_strategies_tuple_lists_new_entries() -> None:
    assert "prefix" in STRATEGIES
    assert "adaptive" in STRATEGIES
