"""Tests for the nested-set inverted file (Section 2, Table 2)."""

from __future__ import annotations

import pytest

from repro.core.cache import LRUCache
from repro.core.invfile import (
    InvertedFile,
    InvertedFileError,
    atom_from_token,
    atom_token,
)
from repro.core.model import NestedSet


@pytest.fixture
def paper_index(paper_records) -> InvertedFile:
    return InvertedFile.build(paper_records)


class TestAtomTokens:
    def test_roundtrip(self) -> None:
        for atom in ("UK", "", "i:tricky", 42, -7):
            assert atom_from_token(atom_token(atom)) == atom

    def test_int_str_disjoint(self) -> None:
        assert atom_token(1) != atom_token("1")

    def test_bool_rejected(self) -> None:
        with pytest.raises(TypeError):
            atom_token(True)

    def test_bad_token(self) -> None:
        with pytest.raises(InvertedFileError):
            atom_from_token("x:whatever")


class TestBuildStructure:
    def test_counts(self, paper_index: InvertedFile) -> None:
        # Figure 1: Sue has 4 internal nodes (root, two second-level sets,
        # two third-level sets)... counted from the actual example trees.
        assert paper_index.n_records == 2
        total_internal = sum(
            tree.internal_count
            for _o, _k, _r, tree in paper_index.iter_records())
        assert paper_index.n_nodes == total_internal

    def test_table2_key_space(self, paper_index: InvertedFile) -> None:
        atoms = set(paper_index.iter_atoms())
        assert atoms == {"London", "UK", "A", "B", "C", "car", "motorbike",
                         "Boston", "USA", "VA"}

    def test_posting_lists_match_leaf_locations(
            self, paper_index: InvertedFile, paper_records) -> None:
        # Every atom's posting count equals the number of internal nodes
        # that own a leaf with that atom, across the collection.
        expected: dict = {}
        for _key, tree in paper_records:
            for node in tree.iter_sets():
                for atom in node.atoms:
                    expected[atom] = expected.get(atom, 0) + 1
        for atom, count in expected.items():
            assert len(paper_index.postings(atom)) == count

    def test_postings_sorted_with_sorted_children(
            self, paper_index: InvertedFile) -> None:
        for atom in paper_index.iter_atoms():
            plist = paper_index.postings(atom)
            heads = [p for p, _ in plist]
            assert heads == sorted(heads)
            for _p, children in plist:
                assert list(children) == sorted(children)

    def test_children_are_internal_nodes(self, paper_index) -> None:
        all_ids = set(range(paper_index.n_nodes))
        for atom in paper_index.iter_atoms():
            for p, children in paper_index.postings(atom):
                assert p in all_ids
                assert set(children) <= all_ids

    def test_missing_atom_empty_list(self, paper_index) -> None:
        assert len(paper_index.postings("Narnia")) == 0

    def test_config_required(self) -> None:
        from repro.storage import MemoryKVStore
        with pytest.raises(InvertedFileError):
            InvertedFile(MemoryKVStore())


class TestNodeMeta:
    def test_preorder_intervals(self, paper_index: InvertedFile) -> None:
        # Node ids are preorder ranks: every node's interval must nest
        # inside its record root's interval.
        for ordinal in range(paper_index.n_records):
            _key, root_id, tree = paper_index.record(ordinal)
            root_meta = paper_index.meta(root_id)
            assert root_meta.is_root
            assert root_meta.max_desc - root_id + 1 == tree.internal_count
            for node_id in range(root_id + 1, root_meta.max_desc + 1):
                meta = paper_index.meta(node_id)
                assert meta.record == ordinal
                assert not meta.is_root
                assert node_id <= meta.max_desc <= root_meta.max_desc

    def test_leaf_counts(self, paper_index: InvertedFile) -> None:
        # Sum of leaf counts over all nodes == total leaves in collection.
        total = sum(paper_index.leaf_count(node_id)
                    for node_id in range(paper_index.n_nodes))
        expected = sum(tree.leaf_count
                       for _o, _k, _r, tree in paper_index.iter_records())
        assert total == expected

    def test_out_of_range(self, paper_index: InvertedFile) -> None:
        with pytest.raises(InvertedFileError):
            paper_index.meta(-1)
        with pytest.raises(InvertedFileError):
            paper_index.meta(paper_index.n_nodes)


class TestRecords:
    def test_record_roundtrip(self, paper_index, paper_records) -> None:
        stored = {key: tree
                  for _o, key, _r, tree in paper_index.iter_records()}
        assert stored == dict(paper_records)

    def test_record_key(self, paper_index) -> None:
        assert paper_index.record_key(0) == "sue"
        assert paper_index.record_key(1) == "tim"
        with pytest.raises(InvertedFileError):
            paper_index.record(99)

    def test_heads_to_keys_root_mode(self, paper_index) -> None:
        _key, tim_root, _tree = paper_index.record(1)
        inner = tim_root + 1  # some non-root node of tim's record
        assert paper_index.heads_to_keys({tim_root, inner}) == ["tim"]
        assert paper_index.heads_to_keys({inner}) == []

    def test_heads_to_keys_anywhere_mode(self, paper_index) -> None:
        _key, tim_root, _tree = paper_index.record(1)
        assert paper_index.heads_to_keys({tim_root + 1},
                                         mode="anywhere") == ["tim"]


class TestSpecialLists:
    def test_all_nodes_complete(self, paper_index) -> None:
        all_list = paper_index.all_nodes()
        assert len(all_list) == paper_index.n_nodes
        assert [p for p, _ in all_list] == list(range(paper_index.n_nodes))

    def test_zero_leaf_nodes(self) -> None:
        records = [("r", NestedSet(["a"], [NestedSet()]))]
        index = InvertedFile.build(records)
        zero = index.zero_leaf_nodes()
        assert len(zero) == 1
        assert index.leaf_count(zero.entries[0][0]) == 0


class TestFrequenciesAndCache:
    def test_frequencies_descending(self, paper_index) -> None:
        freqs = paper_index.frequencies()
        counts = [df for _atom, df in freqs]
        assert counts == sorted(counts, reverse=True)
        # UK occurs in four sets: Sue's root, Sue's two license sets, and
        # Tim's UK license set.
        assert dict(freqs)["UK"] == 4

    def test_cache_hit_skips_store(self, paper_records) -> None:
        index = InvertedFile.build(paper_records, cache=LRUCache(budget=16))
        index.reset_stats()
        first = index.postings("UK")
        second = index.postings("UK")
        assert first == second
        assert index.stats.cache_hits == 1
        assert index.stats.lists_decoded == 1


class TestDiskRoundtrip:
    @pytest.mark.parametrize("kind", ["diskhash", "btree"])
    def test_build_close_reopen(self, kind, tmp_path, paper_records) -> None:
        path = str(tmp_path / f"ix.{kind}")
        built = InvertedFile.build(paper_records, storage=kind, path=path)
        uk_postings = built.postings("UK")
        built.close()
        reopened = InvertedFile.open(kind, path)
        assert reopened.n_records == 2
        assert reopened.postings("UK") == uk_postings
        assert reopened.record_key(1) == "tim"
        reopened.close()
