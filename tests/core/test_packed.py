"""Satellite coverage for the packed (0x03) posting format.

Four concerns of the vectorized data plane live here: width promotion
must round-trip at every fixed-width boundary (hypothesis drives deltas
across the 1/2/4/8-byte edges), corrupted or truncated packed payloads
must raise :class:`CorruptionError` instead of decoding garbage, an
index written in the 0x02 delta-varint generation must reopen and
answer unchanged -- upgrading to 0x03 only through compaction -- and the
pure-stdlib fallback (numpy absent) must stay behaviourally identical
to the vectorized path, bit for bit on the wire and entry for entry in
every intersection.
"""

from __future__ import annotations

import random
from itertools import accumulate

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.postings as postings_mod
import repro.storage.codec as codec_mod
from repro.core.engine import NestedSetIndex
from repro.core.invfile import QueryStats
from repro.core.postings import LazyPostingList, PostingList, intersect
from repro.storage import open_store
from repro.storage.codec import (
    BLOCKED_FORMAT_BYTE,
    PACKED_FORMAT_BYTE,
    PACKED_WIDTHS,
    BlockInfo,
    CorruptionError,
    _width_for,
    decode_blocked,
    decode_blocked_header,
    decode_packed_arrays,
    encode_blocked,
)

from ..conftest import random_tree


def _random_postings(rng: random.Random, size: int,
                     head_space: int = 10_000) -> list:
    heads = sorted(rng.sample(range(head_space), size))
    out = []
    for p in heads:
        n_children = rng.randrange(0, 4)
        children = tuple(sorted(rng.sample(range(head_space), n_children)))
        out.append((p, children))
    return out


# -- width promotion --------------------------------------------------------

#: Deltas straddling every fixed-width boundary: one byte tops out at
#: 255, two at 65535, four at 2^32 - 1; anything larger takes 8 bytes.
_EDGES = (1, 2, 255, 256, 257, 65_535, 65_536, 65_537,
          (1 << 32) - 1, 1 << 32, (1 << 32) + 1)

_head_delta = st.one_of(st.integers(1, 300), st.sampled_from(_EDGES))
_child_delta = st.one_of(st.integers(0, 300), st.sampled_from(_EDGES))


@st.composite
def _edge_posting_lists(draw):
    """Sorted posting lists whose deltas cross width-promotion edges."""
    head_deltas = draw(st.lists(_head_delta, max_size=24))
    entries = []
    for p in accumulate(head_deltas):
        child_deltas = draw(st.lists(_child_delta, max_size=4))
        entries.append((p, tuple(accumulate(child_deltas))))
    return entries


class TestWidthPromotion:
    def test_width_for_edges(self) -> None:
        assert _width_for(0) == 1
        assert _width_for(255) == 1
        assert _width_for(256) == 2
        assert _width_for(65_535) == 2
        assert _width_for(65_536) == 4
        assert _width_for((1 << 32) - 1) == 4
        assert _width_for(1 << 32) == 8
        assert _width_for((1 << 64) - 1) == 8
        with pytest.raises(ValueError):
            _width_for(1 << 64)

    @given(entries=_edge_posting_lists(),
           block_size=st.sampled_from([1, 3, 7, 128]))
    @settings(max_examples=120, deadline=None)
    def test_round_trip_across_width_edges(self, entries,
                                           block_size) -> None:
        raw = encode_blocked(entries, block_size)
        assert raw[0] == PACKED_FORMAT_BYTE
        assert decode_blocked(raw) == entries
        for info in decode_blocked_header(raw).blocks:
            for width in raw[info.offset:info.offset + 3]:
                assert width in PACKED_WIDTHS

    def test_each_promotion_edge_deterministic(self) -> None:
        # One list per edge: the head spacing and the child ids force
        # that edge's width, and the payload must still round-trip.
        for edge in (255, 256, 65_535, 65_536, (1 << 32) - 1, 1 << 32):
            entries = [(0, (0, edge)), (edge, ()),
                       (2 * edge + 1, (edge + 1,))]
            for block_size in (1, 2, 8):
                raw = encode_blocked(entries, block_size)
                assert decode_blocked(raw) == entries, edge


# -- corruption -------------------------------------------------------------

class TestPackedCorruption:
    def _sample(self):
        entries = [(p, (p + 1, p + 3)) for p in range(0, 40, 2)]
        raw = encode_blocked(entries, 8)
        assert raw[0] == PACKED_FORMAT_BYTE
        return raw, decode_blocked_header(raw)

    def test_truncated_value_rejected(self) -> None:
        raw, _header = self._sample()
        for cut in (1, 4, len(raw) // 2):
            with pytest.raises(CorruptionError):
                decode_blocked(raw[:len(raw) - cut])

    def test_truncated_block_payload_rejected(self) -> None:
        raw, header = self._sample()
        info = header.blocks[0]
        # A directory entry claiming fewer bytes than the width header
        # needs, and one pointing past the buffer, must both be caught.
        for length in (0, 2):
            short = BlockInfo(info.min_head, info.max_head, info.count,
                              info.offset, length)
            with pytest.raises(CorruptionError):
                decode_packed_arrays(raw, short)
        past_end = BlockInfo(info.min_head, info.max_head, info.count,
                             len(raw) - 4, 64)
        with pytest.raises(CorruptionError):
            decode_packed_arrays(raw, past_end)

    def test_bad_width_byte_rejected(self) -> None:
        raw, header = self._sample()
        for byte_at in range(3):
            tampered = bytearray(raw)
            tampered[header.blocks[0].offset + byte_at] = 7
            with pytest.raises(CorruptionError):
                decode_blocked(bytes(tampered))

    def test_counts_payload_mismatch_rejected(self) -> None:
        raw, header = self._sample()
        info = header.blocks[0]
        w_heads = raw[info.offset]
        counts_at = info.offset + 3 + info.count * w_heads
        tampered = bytearray(raw)
        tampered[counts_at] += 1        # first posting claims an extra child
        with pytest.raises(CorruptionError):
            decode_packed_arrays(bytes(tampered), info)

    def test_heads_past_directory_max_rejected(self) -> None:
        raw, header = self._sample()
        info = header.blocks[0]
        w_heads = raw[info.offset]
        last_delta = info.offset + 3 + (info.count - 1) * w_heads
        tampered = bytearray(raw)
        tampered[last_delta] += 1       # cumsum now overshoots max_head
        with pytest.raises(CorruptionError):
            decode_packed_arrays(bytes(tampered), info)

    def test_misaligned_child_array_rejected(self) -> None:
        entries = [(0, (1,)), (5, (2, 4, 6))]      # 4 one-byte child deltas
        raw = encode_blocked(entries, 8)
        info = decode_blocked_header(raw).blocks[0]
        tampered = bytearray(raw)
        tampered[info.offset + 2] = 8              # 4 bytes % 8 != 0
        with pytest.raises(CorruptionError):
            decode_packed_arrays(bytes(tampered), info)


# -- legacy 0x02 compatibility and compact upgrade --------------------------

def _corpus(seed: int, n: int = 40) -> list:
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    return [(f"r{i:02d}", random_tree(rng, atoms)) for i in range(n)]


def _queries(seed: int, n: int = 10) -> list:
    rng = random.Random(seed)
    atoms = [f"a{i}" for i in range(10)]
    return [random_tree(rng, atoms, allow_empty=False) for _ in range(n)]


def _downgrade_atom_values(path: str) -> int:
    """Rewrite every packed atom value of a closed disk index to 0x02."""
    store = open_store("diskhash", path)
    rewritten = 0
    try:
        for key, raw in list(store.items()):
            if key.startswith(b"A:") and raw[:1] == bytes(
                    [PACKED_FORMAT_BYTE]):
                header = decode_blocked_header(raw)
                legacy = encode_blocked(decode_blocked(raw),
                                        header.block_size, packed=False)
                assert legacy[0] == BLOCKED_FORMAT_BYTE
                store.put(key, legacy)
                rewritten += 1
        store.sync()
    finally:
        store.close()
    return rewritten


class TestLegacyBlockedUpgrade:
    def test_0x02_index_reopens_and_compact_upgrades(self, tmp_path) -> None:
        corpus = _corpus(31)
        queries = _queries(131)
        path = str(tmp_path / "old.ix")
        built = NestedSetIndex.build(corpus, storage="diskhash", path=path)
        expected = [built.query(query) for query in queries]
        built.close()

        # Downgrade the on-disk atom values to the previous generation's
        # 0x02 format; the index must reopen and answer unchanged, and
        # the stats must show that nothing silently migrated.
        assert _downgrade_atom_values(path) > 0
        reopened = NestedSetIndex.open("diskhash", path)
        stats = reopened._ifile.block_stats()
        assert stats["blocked_lists"] > 0 and stats["packed_lists"] == 0
        assert [reopened.query(query) for query in queries] == expected

        # Compaction is the upgrade path: the rebuilt index is packed
        # throughout and keeps answering identically.
        new_path = str(tmp_path / "new.ix")
        reopened.compact(storage="diskhash", path=new_path)
        stats = reopened._ifile.block_stats()
        assert stats["packed_lists"] == stats["blocked_lists"] > 0
        assert [reopened.query(query) for query in queries] == expected

        # ... and byte-identically: the compacted store's atom values
        # match a fresh 0x03 build of the same corpus.
        reopened.close()
        fresh_path = str(tmp_path / "fresh.ix")
        NestedSetIndex.build(corpus, storage="diskhash",
                             path=fresh_path).close()
        compacted_values = _atom_values(new_path)
        assert compacted_values == _atom_values(fresh_path)
        assert all(raw[0] == PACKED_FORMAT_BYTE
                   for raw in compacted_values.values())

    def test_mutations_keep_0x02_values_in_format(self, tmp_path) -> None:
        # Appends into a downgraded index must not migrate values: mixed
        # generations stay byte-stable under mutation (only compaction
        # upgrades).
        path = str(tmp_path / "mixed.ix")
        built = NestedSetIndex.build(_corpus(32, n=20), storage="diskhash",
                                     path=path)
        built.close()
        assert _downgrade_atom_values(path) > 0

        index = NestedSetIndex.open("diskhash", path)
        for i, (key, tree) in enumerate(_corpus(33, n=5)):
            index.insert(f"x{i}", tree)
        queries = _queries(132)
        expected = [index.query(query) for query in queries]
        index.close()

        formats = {raw[0] for raw in _atom_values(path).values()}
        assert formats == {BLOCKED_FORMAT_BYTE}
        reopened = NestedSetIndex.open("diskhash", path)
        assert [reopened.query(query) for query in queries] == expected
        reopened.close()


def _atom_values(path: str) -> dict[bytes, bytes]:
    store = open_store("diskhash", path)
    try:
        return {key: raw for key, raw in store.items()
                if key.startswith(b"A:")}
    finally:
        store.close()


# -- numpy-free fallback ----------------------------------------------------

class TestNumpyFallback:
    def _stub_numpy(self, monkeypatch) -> None:
        monkeypatch.setattr(codec_mod, "_np", None)
        monkeypatch.setattr(postings_mod, "_np", None)

    def test_fallback_encode_is_byte_identical(self, monkeypatch) -> None:
        rng = random.Random(41)
        entries = _random_postings(rng, 300)
        with_numpy = encode_blocked(entries, 16)
        self._stub_numpy(monkeypatch)
        assert encode_blocked(entries, 16) == with_numpy

    def test_fallback_decode_matches_numpy(self, monkeypatch) -> None:
        rng = random.Random(42)
        for size, block_size in ((0, 4), (37, 4), (300, 16), (300, 128)):
            entries = _random_postings(rng, size)
            raw = encode_blocked(entries, block_size)
            assert decode_blocked(raw) == entries      # numpy path
            header = decode_blocked_header(raw)
            numpy_blocks = [decode_packed_arrays(raw, info)
                            for info in header.blocks]
            with monkeypatch.context() as patched:
                patched.setattr(codec_mod, "_np", None)
                assert decode_blocked(raw) == entries  # stdlib path
                for info, (heads, counts, children) in zip(
                        header.blocks, numpy_blocks):
                    got = decode_packed_arrays(raw, info)
                    assert got[0] == heads.tolist()
                    assert got[1] == counts.tolist()
                    assert got[2] == children.tolist()

    def test_fallback_intersect_matches_vectorized(self,
                                                   monkeypatch) -> None:
        rng = random.Random(43)
        cases = []
        for _ in range(40):
            head_space = rng.choice([50, 400])
            lists = [_random_postings(rng, rng.randrange(1, 50),
                                      head_space=head_space)
                     for _ in range(rng.randrange(2, 4))]
            shared = lists[0][:rng.randrange(0, len(lists[0]) + 1)]
            lists = [sorted({p: c for p, c in entries + shared}.items())
                     for entries in lists]
            cases.append(lists)

        def run() -> list:
            results = []
            stats = QueryStats()
            for lists in cases:
                block_size = 4
                operands = [
                    LazyPostingList(encode_blocked(entries, block_size),
                                    stats=stats)
                    if i % 2 else PostingList(entries)
                    for i, entries in enumerate(lists)]
                results.append(intersect(operands, stats=stats).entries)
            return results, stats

        vec_results, vec_stats = run()
        assert vec_stats.intersects_vectorized == len(cases)
        assert vec_stats.intersects_scalar == 0
        assert vec_stats.decode_path == "vectorized"

        self._stub_numpy(monkeypatch)
        scalar_results, scalar_stats = run()
        assert scalar_results == vec_results
        assert scalar_stats.intersects_scalar == len(cases)
        assert scalar_stats.intersects_vectorized == 0
        assert scalar_stats.decode_path == "scalar"

    def test_fallback_engine_answers_unchanged(self, monkeypatch) -> None:
        corpus = _corpus(44, n=25)
        queries = _queries(144, n=8)
        expected = [NestedSetIndex.build(corpus).query(query)
                    for query in queries]
        self._stub_numpy(monkeypatch)
        index = NestedSetIndex.build(corpus)
        assert [index.query(query) for query in queries] == expected
        stats = index.stats()["index"]
        assert stats["intersects_vectorized"] == 0
        assert stats["decode_path"] == "scalar"


class TestDecodePathReporting:
    def test_engine_reports_vectorized_path(self) -> None:
        index = NestedSetIndex.build(_corpus(45, n=25))
        for query in _queries(145, n=10):
            index.query(query)
        stats = index.stats()["index"]
        assert stats["intersects_vectorized"] > 0
        assert stats["intersects_scalar"] == 0
        assert stats["decode_path"] == "vectorized"

    def test_explain_carries_decode_path(self) -> None:
        index = NestedSetIndex.build(_corpus(46, n=25))
        for query in _queries(146, n=10):
            explained = index.explain(query)
            assert explained.decode_path in ("vectorized", "scalar")
            assert "decode_path=" in explained.render()
