"""Tests for the naive baseline scanner."""

from __future__ import annotations

import random

import pytest

from repro.core.bloom import BloomIndex
from repro.core.invfile import InvertedFile
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.naive import (
    NaiveScanner,
    hom_join_pairs,
    naive_containment_join,
    naive_predicate,
    reference_query,
)
from tests.conftest import random_tree

N = NestedSet


class TestPredicate:
    def test_dispatch(self, tim, paper_query) -> None:
        assert naive_predicate(tim, paper_query)
        assert naive_predicate(tim, paper_query,
                               QuerySpec(semantics="homeo"))
        assert naive_predicate(tim, tim, QuerySpec(join="equality"))
        assert not naive_predicate(tim, paper_query,
                                   QuerySpec(join="equality"))

    def test_anywhere_mode(self) -> None:
        data = N(["top"], [N(["a"], [N(["b"])])])
        query = N(["a"], [N(["b"])])
        assert not naive_predicate(data, query)
        assert naive_predicate(data, query, QuerySpec(mode="anywhere"))

    def test_unknown_join_rejected(self, tim) -> None:
        spec = QuerySpec()
        object.__setattr__(spec, "join", "bogus")
        with pytest.raises(ValueError):
            naive_predicate(tim, tim, spec)


class TestScanner:
    def test_over_records(self, paper_records, paper_query) -> None:
        scanner = NaiveScanner(paper_records)
        assert scanner.query(paper_query) == ["tim"]
        assert scanner.records_tested == 2

    def test_over_inverted_file(self, paper_records, paper_query) -> None:
        index = InvertedFile.build(paper_records)
        scanner = NaiveScanner(index)
        assert scanner.query(paper_query) == ["tim"]

    def test_bloom_prefilter_same_results(self, small_corpus) -> None:
        bloom = BloomIndex.build(small_corpus, kind="flat")
        plain = NaiveScanner(small_corpus)
        filtered = NaiveScanner(small_corpus, bloom_index=bloom)
        rng = random.Random(17)
        atoms = [f"a{i}" for i in range(12)]
        for _ in range(30):
            query = random_tree(rng, atoms)
            assert filtered.query(query) == plain.query(query)
        assert filtered.records_tested <= plain.records_tested
        assert filtered.records_skipped > 0

    def test_bloom_prefilter_counts(self, small_corpus) -> None:
        bloom = BloomIndex.build(small_corpus, kind="flat")
        scanner = NaiveScanner(small_corpus, bloom_index=bloom)
        # an absent atom lets the filter skip every record
        scanner.query(N(["__nowhere__"]))
        assert scanner.records_skipped == len(small_corpus)
        assert scanner.records_tested == 0


class TestJoinHelpers:
    def test_reference_query(self, paper_records, paper_query) -> None:
        assert reference_query(paper_records, paper_query) == ["tim"]

    def test_naive_containment_join(self, paper_records) -> None:
        queries = [("q1", N(["USA"])), ("q2", N(["UK"]))]
        pairs = naive_containment_join(queries, paper_records)
        assert ("q1", "tim") in pairs
        assert ("q2", "sue") in pairs
        assert ("q1", "sue") not in pairs

    def test_hom_join_pairs_equals_scanner(self, small_corpus) -> None:
        queries = [(f"q{i}", tree) for i, (_k, tree)
                   in enumerate(small_corpus[:5])]
        pairs = set(hom_join_pairs(queries, small_corpus))
        expect = {(qkey, skey)
                  for qkey, query in queries
                  for skey in NaiveScanner(small_corpus).query(query)}
        assert pairs == expect
