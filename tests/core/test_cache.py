"""Tests for the inverted-list cache policies (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.core.cache import (
    PAPER_BUDGET,
    FrequencyCache,
    LRUCache,
    NoCache,
    make_cache,
)
from repro.core.postings import PostingList

PL = PostingList([(1, ())])


class TestNoCache:
    def test_always_misses(self) -> None:
        cache = NoCache()
        cache.admit("a", PL)
        assert cache.get("a") is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0


class TestFrequencyCache:
    def test_admits_hot_atoms_only(self) -> None:
        cache = FrequencyCache(["hot"], budget=2)
        cache.admit("hot", PL)
        cache.admit("cold", PL)
        assert cache.get("hot") == PL
        assert cache.get("cold") is None
        assert len(cache) == 1

    def test_from_frequencies_takes_top_k(self) -> None:
        freqs = [("a", 10), ("b", 5), ("c", 1)]
        cache = FrequencyCache.from_frequencies(freqs, budget=2)
        cache.admit("a", PL)
        cache.admit("b", PL)
        cache.admit("c", PL)
        assert cache.get("a") == PL
        assert cache.get("b") == PL
        assert cache.get("c") is None

    def test_tie_break_is_deterministic(self) -> None:
        freqs = [("b", 5), ("a", 5), ("c", 5)]
        cache = FrequencyCache.from_frequencies(freqs, budget=2)
        cache.admit("a", PL)
        cache.admit("b", PL)
        cache.admit("c", PL)
        assert cache.get("a") is not None
        assert cache.get("b") is not None
        assert cache.get("c") is None

    def test_hot_set_must_fit_budget(self) -> None:
        with pytest.raises(ValueError):
            FrequencyCache(["a", "b", "c"], budget=2)

    def test_paper_budget_default(self) -> None:
        assert PAPER_BUDGET == 250
        cache = FrequencyCache.from_frequencies(
            [(f"a{i}", i) for i in range(1000)])
        assert cache.budget == 250

    def test_no_eviction(self) -> None:
        cache = FrequencyCache(["a"], budget=1)
        cache.admit("a", PL)
        for _ in range(10):
            assert cache.get("a") == PL
        assert cache.stats.evictions == 0

    def test_clear(self) -> None:
        cache = FrequencyCache(["a"])
        cache.admit("a", PL)
        cache.clear()
        assert cache.get("a") is None


class TestLRUCache:
    def test_basic(self) -> None:
        cache = LRUCache(budget=2)
        cache.admit("a", PL)
        assert cache.get("a") == PL
        assert cache.stats.hits == 1

    def test_eviction_order(self) -> None:
        cache = LRUCache(budget=2)
        other = PostingList([(9, ())])
        cache.admit("a", PL)
        cache.admit("b", PL)
        cache.get("a")          # refresh a; b is now least recent
        cache.admit("c", other)
        assert cache.get("b") is None
        assert cache.get("a") == PL
        assert cache.get("c") == other
        assert cache.stats.evictions == 1

    def test_budget_validation(self) -> None:
        with pytest.raises(ValueError):
            LRUCache(budget=0)

    def test_readmit_refreshes(self) -> None:
        cache = LRUCache(budget=2)
        cache.admit("a", PL)
        cache.admit("b", PL)
        cache.admit("a", PL)    # touch a
        cache.admit("c", PL)    # evicts b
        assert cache.get("a") is not None
        assert cache.get("b") is None


class TestFactory:
    def test_policies(self) -> None:
        assert isinstance(make_cache(None), NoCache)
        assert isinstance(make_cache("none"), NoCache)
        assert isinstance(make_cache("lru"), LRUCache)
        cache = make_cache("frequency", frequencies=[("a", 3)], budget=10)
        assert isinstance(cache, FrequencyCache)

    def test_unknown_policy(self) -> None:
        with pytest.raises(ValueError):
            make_cache("belady")

    def test_hit_rate(self) -> None:
        cache = LRUCache(budget=4)
        cache.admit("a", PL)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == 0.5
        cache.stats.reset()
        assert cache.stats.requests == 0
        assert cache.stats.hit_rate == 0.0
