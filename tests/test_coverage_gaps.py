"""Targeted tests for paths the module suites exercise only indirectly."""

from __future__ import annotations


from repro.core.engine import NestedSetIndex
from repro.core.model import NestedSet
from repro.core.trace import explain
from repro.storage.btree import BPlusTree

N = NestedSet


class TestBtreeOverflowLifecycle:
    def test_replace_overflow_value_recycles_pages(self, tmp_path) -> None:
        tree = BPlusTree(str(tmp_path / "o.bt"), create=True,
                         page_size=512)
        big = b"A" * 5000
        tree.put(b"k", big)
        # A replace transiently holds both chains (new written before old
        # is freed), so the file grows once -- and must then stabilize.
        tree.put(b"k", b"B" * 5000)
        pages_after_first_replace = tree._pager.n_pages
        for _ in range(5):
            tree.put(b"k", b"C" * 5000)
        assert tree._pager.n_pages == pages_after_first_replace
        assert tree.get(b"k") == b"C" * 5000
        tree.close()

    def test_delete_overflow_value(self, tmp_path) -> None:
        tree = BPlusTree(str(tmp_path / "d.bt"), create=True,
                         page_size=512)
        tree.put(b"k", b"C" * 4000)
        before = tree._pager.n_pages
        assert tree.delete(b"k")
        # freed chain is recycled by the next big insert
        tree.put(b"k2", b"D" * 4000)
        assert tree._pager.n_pages <= before + 1
        tree.close()


class TestTraceRendering:
    def test_deep_query_renders_nested(self, small_corpus) -> None:
        from repro.core.invfile import InvertedFile
        index = InvertedFile.build(small_corpus)
        query = N(["a1"], [N(["a2"], [N(["a3"], [N(["a4"])])])])
        text = explain(query, index).render()
        # one line per query node, indentation growing with depth
        node_lines = [line for line in text.splitlines()
                      if "node " in line]
        assert len(node_lines) == 4
        indents = [len(line) - len(line.lstrip()) for line in node_lines]
        assert indents == sorted(indents)

    def test_label_truncation(self, small_corpus) -> None:
        from repro.core.invfile import InvertedFile
        index = InvertedFile.build(small_corpus)
        wide = N([f"a{i}" for i in range(12)])
        trace = explain(wide, index)
        assert len(trace.root.label) <= 40


class TestCliQueryOptions:
    def test_join_and_mode_flags(self, tmp_path, capsys) -> None:
        from repro.cli import main
        collection = tmp_path / "c.nsets"
        collection.write_text("r1\t{a, b, {c}}\nr2\t{a, {c, d}}\n")
        index_path = str(tmp_path / "c.idx")
        main(["index", str(collection), "-o", index_path])
        capsys.readouterr()
        assert main(["query", index_path, "{c, d}",
                     "--mode", "anywhere"]) == 0
        assert capsys.readouterr().out.strip() == "r2"
        assert main(["query", index_path, "{a, b, c, {c}}",
                     "--join", "superset"]) == 0
        assert capsys.readouterr().out.strip() == "r1"
        # overlap(1): r1 shares {a} at the root and {c}∩{c}; r2 shares
        # {a} and {c}∩{c,d} -- both qualify.
        assert main(["query", index_path, "{a, x, {c}}",
                     "--join", "overlap", "--epsilon", "1",
                     "--algorithm", "topdown"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["r1", "r2"]


class TestDatasetOptions:
    def test_domain_size_forwarded(self) -> None:
        from repro.bench.workloads import generate_dataset
        tiny = list(generate_dataset("uniform-wide", 40, domain_size=5))
        atoms: set = set()
        for _key, tree in tiny:
            atoms |= tree.all_atoms()
        assert atoms <= {f"v{i}" for i in range(5)}

    def test_workload_cache_domain_size_key(self) -> None:
        from repro.bench.workloads import WorkloadCache
        cache = WorkloadCache()
        small = cache.get("uniform-wide", 30, n_queries=5, domain_size=10)
        default = cache.get("uniform-wide", 30, n_queries=5)
        assert small is not default
        cache.clear()


class TestEngineExternalBuildErrors:
    def test_duplicate_keys_not_deduplicated(self, small_corpus) -> None:
        # Duplicate keys are a data bug; the key map keeps the last one
        # and the integrity checker reports the collision.
        from repro.core.checker import check_index
        records = small_corpus + [(small_corpus[0][0], N(["dup"]))]
        index = NestedSetIndex.build(records)
        problems = check_index(index.inverted_file)
        assert any("duplicate live key" in problem for problem in problems)
