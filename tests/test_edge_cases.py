"""Cross-cutting edge cases that don't belong to a single module's suite."""

from __future__ import annotations


from repro.core.engine import NestedSetIndex
from repro.core.invfile import InvertedFile
from repro.core.checker import assert_healthy
from repro.core.matchspec import QuerySpec
from repro.core.model import NestedSet
from repro.core.postings import (
    PathList,
    PostingList,
    heads_with_descendant_in,
    nav_join_descendant,
)

N = NestedSet


class TestUnicodeAtoms:
    """Atoms flow through codecs, stores, and text syntax unmangled."""

    ATOMS = ["naïve", "スキーマ", "emoji☃atom", "tab\tatom", 'quo"te']

    def test_index_roundtrip(self) -> None:
        tree = N(self.ATOMS, [N(["ünter"])])
        index = NestedSetIndex.build([("u", tree)])
        for atom in self.ATOMS:
            assert index.query(N([atom])) == ["u"]
        stored = dict(index.records())["u"]
        assert stored == tree

    def test_disk_roundtrip(self, tmp_path) -> None:
        tree = N(self.ATOMS)
        path = str(tmp_path / "u.idx")
        NestedSetIndex.build([("u", tree)], storage="diskhash",
                             path=path).close()
        reopened = NestedSetIndex.open("diskhash", path)
        assert reopened.query(N([self.ATOMS[1]])) == ["u"]
        reopened.close()

    def test_text_syntax_roundtrip(self) -> None:
        tree = N(self.ATOMS)
        assert N.parse(tree.to_text()) == tree


class TestIdenticalRecords:
    def test_duplicate_values_under_distinct_keys(self) -> None:
        tree = N(["a"], [N(["b"])])
        index = NestedSetIndex.build([("one", tree), ("two", tree)])
        assert index.query(tree) == ["one", "two"]
        assert index.query(tree, join="equality") == ["one", "two"]
        assert_healthy(index.inverted_file)

    def test_single_atom_universe(self) -> None:
        records = [(f"r{i}", N(["x"])) for i in range(5)]
        index = NestedSetIndex.build(records)
        assert len(index.query(N(["x"]))) == 5
        assert index.collection_stats().atom_stats().distinct_atoms == 1


class TestSegmentBoundary:
    def test_exactly_segment_size_stays_plain(self) -> None:
        from repro.core.segments import FORMAT_PLAIN, value_format
        records = [(f"r{i}", N(["hot"])) for i in range(8)]
        index = InvertedFile.build(records, segment_size=8)
        raw = index.store.get(b"A:s:hot")
        assert value_format(raw) == FORMAT_PLAIN  # len == size: no split

    def test_one_over_becomes_segmented(self) -> None:
        from repro.core.segments import FORMAT_SEGMENTED, value_format
        records = [(f"r{i}", N(["hot"])) for i in range(9)]
        index = InvertedFile.build(records, segment_size=8)
        raw = index.store.get(b"A:s:hot")
        assert value_format(raw) == FORMAT_SEGMENTED


class TestPostingsStructures:
    def test_pathlist_basics(self) -> None:
        paths = PathList([(1, (2, 3)), (4, ())])
        assert paths.heads() == {1, 4}
        assert len(paths) == 2
        assert bool(paths)
        assert not PathList()
        assert "PathList" in repr(paths)

    def test_nav_join_descendant_empty(self) -> None:
        assert nav_join_descendant([], PostingList([(1, ())])) == []
        assert nav_join_descendant([(1, 1, 5)], PostingList()) == []

    def test_heads_with_descendant_in_no_requirements(self) -> None:
        cand = PostingList([(1, ())])
        assert heads_with_descendant_in(cand, [], lambda p: p) is cand

    def test_postinglist_equality_and_repr(self) -> None:
        left = PostingList([(1, (2,))])
        assert left == PostingList([(1, (2,))])
        assert left != PostingList([(1, ())])
        assert left.__eq__(42) is NotImplemented
        assert "PostingList" in repr(left)


class TestEngineCorners:
    def test_records_iteration_skips_deleted(self, small_corpus) -> None:
        index = NestedSetIndex.build(small_corpus)
        index.delete(small_corpus[0][0])
        keys = [key for key, _tree in index.records()]
        assert small_corpus[0][0] not in keys
        assert len(keys) == len(small_corpus) - 1

    def test_build_external_with_cache(self, small_corpus) -> None:
        index = NestedSetIndex.build_external(small_corpus,
                                              memory_budget=32,
                                              cache="frequency")
        from repro.core.cache import FrequencyCache
        assert isinstance(index.inverted_file.cache.inner, FrequencyCache)
        assert index.query(small_corpus[3][1])

    def test_match_nodes_default_spec(self, paper_records,
                                      paper_query) -> None:
        index = NestedSetIndex.build(paper_records)
        heads = index.match_nodes(paper_query)
        assert index.inverted_file.heads_to_keys(heads) == ["tim"]

    def test_query_spec_object_roundtrip(self, paper_records) -> None:
        index = NestedSetIndex.build(paper_records)
        spec = QuerySpec(semantics="homeo", mode="anywhere")
        heads = index.match_nodes("{A, motorbike}", spec=spec)
        assert index.inverted_file.heads_to_keys(
            heads, mode="anywhere") == ["sue", "tim"]


class TestWorkloadCacheKeys:
    def test_theta_distinguishes_cache_entries(self) -> None:
        from repro.bench.workloads import WorkloadCache
        cache = WorkloadCache()
        mild = cache.get("zipf-wide", 30, n_queries=5, theta=0.5)
        harsh = cache.get("zipf-wide", 30, n_queries=5, theta=0.9)
        assert mild is not harsh
        assert mild.records != harsh.records
        cache.clear()


class TestIntAtomsEverywhere:
    def test_int_atoms_index_and_io(self, tmp_path) -> None:
        from repro.data.io import load_collection_file, save_collection_file
        records = [("n1", N([1, 2, 2010], [N([-5])])),
                   ("n2", N([2010], [N([1])]))]
        index = NestedSetIndex.build(records)
        assert index.query(N([2010])) == ["n1", "n2"]
        assert index.query(N([], [N([-5])])) == ["n1"]
        path = str(tmp_path / "ints.nsets")
        save_collection_file(records, path)
        assert load_collection_file(path) == records

    def test_int_and_str_never_conflate(self) -> None:
        index = NestedSetIndex.build([("int", N([7])), ("str", N(["7"]))])
        assert index.query(N([7])) == ["int"]
        assert index.query(N(["7"])) == ["str"]
