"""CI smoke test for replication: ship, route, kill the primary, promote.

Exercises the primary/replica tier the way an operator would, with real
subprocesses:

1. build a disk index and start ``nestcontain serve`` as the primary,
2. start two replicas with ``--replicate-from`` (each bootstraps a
   snapshot over the wire, then tails the primary's log),
3. run a mixed workload -- inserts and a delete on the primary racing
   reads routed across the whole fleet -- and assert every replica
   converges to answers byte-identical to an in-process ground truth,
4. check role/term/lag surface on the replica's HTTP gateway and that
   replicas refuse writes with ``read_only`` naming the primary,
5. ``kill -9`` the primary, promote replica 1 via ``nestcontain
   promote``, and verify the promoted server accepts writes while the
   :class:`ReplicaSetClient` fails over to it automatically,
6. drain both replicas and require clean exits.

Exit status 0 means every step held.  Run from the repo root::

    PYTHONPATH=src python scripts/replicate_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import NestedSetIndex  # noqa: E402
from repro.data.io import save_collection_file  # noqa: E402
from repro.bench.workloads import generate_dataset  # noqa: E402
from repro.replication import ReplicaSetClient  # noqa: E402
from repro.server import ServiceClient, ServiceError  # noqa: E402

SERVE_BANNER = re.compile(r":(\d+) \(")
GATEWAY_BANNER = re.compile(r":(\d+)\s*$")


def _start_server(run, env, index_path: str, *extra: str):
    """Spawn ``nestcontain serve`` and parse its banner ports."""
    proc = subprocess.Popen(
        run + ["serve", index_path, "--port", "0", "--http-port", "0",
               "--batch-window-ms", "1", "--workers", "2", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    port = http_port = None
    for line in proc.stdout:
        if line.startswith("bootstrapped"):
            continue    # the replica's snapshot-copy report
        match = SERVE_BANNER.search(line)
        if match and port is None:
            port = int(match.group(1))
            continue
        match = GATEWAY_BANNER.search(line)
        if match:
            http_port = int(match.group(1))
            break
    assert port and http_port, f"server banner incomplete (pid "\
        f"{proc.pid}, exit {proc.poll()})"
    return proc, port, http_port


def _wait_converged(port: int, probes, truth, deadline_s: float = 30.0):
    """Poll one replica until every probe answers byte-identically."""
    deadline = time.monotonic() + deadline_s
    with ServiceClient(port=port) as client:
        while True:
            got = [client.query(q) for q in probes]
            if got == truth:
                lag = client.stats()["server"]["replica_lag"]
                return lag
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"replica :{port} never converged: {got!r} != "
                    f"{truth!r}")
            time.sleep(0.05)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repl-smoke-") as workdir:
        collection = os.path.join(workdir, "smoke.nsets")
        primary_path = os.path.join(workdir, "primary.idx")
        records = list(generate_dataset("uniform-wide", 150, seed=5))
        save_collection_file(records, collection)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        run = [sys.executable, "-m", "repro.cli"]
        subprocess.run(run + ["index", collection, "-o", primary_path],
                       check=True, env=env)

        procs = []
        try:
            primary, pport, _phttp = _start_server(run, env, primary_path)
            procs.append(primary)
            print(f"replicate_smoke: primary on :{pport}")

            replicas = []
            for i in (1, 2):
                replica_path = os.path.join(workdir, f"replica{i}.idx")
                proc, port, http_port = _start_server(
                    run, env, replica_path,
                    "--replicate-from", f"127.0.0.1:{pport}",
                    "--replica-id", f"smoke-r{i}")
                procs.append(proc)
                replicas.append((proc, port, http_port))
                print(f"replicate_smoke: replica {i} on :{port} "
                      f"(gateway :{http_port})")

            # Mixed workload: writes to the primary race reads routed
            # across the fleet.  Routed answers must never regress the
            # pre-write ground truth.
            base_probe = "{%s}" % sorted(records[0][1].atoms)[0]
            with NestedSetIndex.build(records) as truth0:
                expected0 = truth0.query(base_probe)
            assert expected0, "probe query must have matches"
            endpoints = [f"127.0.0.1:{pport}"] + \
                [f"127.0.0.1:{port}" for _proc, port, _http in replicas]
            errors: list[BaseException] = []

            def routed_reader() -> None:
                try:
                    with ReplicaSetClient(endpoints,
                                          max_staleness_s=60.0) as rsc:
                        for _ in range(40):
                            got = rsc.query(base_probe)
                            assert got[:len(expected0)] == expected0, (
                                f"routed read lost data: {got!r}")
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            readers = [threading.Thread(target=routed_reader)
                       for _ in range(3)]
            for thread in readers:
                thread.start()
            with ServiceClient(port=pport) as writer:
                for i in range(8):
                    writer.insert(f"smoke{i}", "{__smoke__, s%d}" % (i % 3))
                assert writer.delete("smoke0") is True
            for thread in readers:
                thread.join()
            assert not errors, errors[:1]

            final_records = records + [
                (f"smoke{i}", "{__smoke__, s%d}" % (i % 3))
                for i in range(1, 8)]
            probes = [base_probe, "{__smoke__}", "{__smoke__, s1}"]
            with NestedSetIndex.build(final_records) as truth:
                expected = [truth.query(q) for q in probes]
            for i, (_proc, port, _http) in enumerate(replicas, start=1):
                lag = _wait_converged(port, probes, expected)
                assert lag["lag_groups"] == 0, lag
                print(f"replicate_smoke: replica {i} byte-identical "
                      f"({lag})")

            # Role surfaces + the write fence.
            _proc1, rport1, rhttp1 = replicas[0]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{rhttp1}/ping", timeout=10) as http:
                ping = json.load(http)
            assert ping["role"] == "replica", ping
            assert ping["replica_lag"]["lag_groups"] == 0, ping
            with ServiceClient(port=rport1) as rclient:
                try:
                    rclient.insert("nope", "{x}")
                    raise AssertionError("replica accepted a write")
                except ServiceError as exc:
                    assert exc.code == "read_only", exc
                    assert str(pport) in exc.message, exc.message
            print("replicate_smoke: gateway reports role/term/lag, "
                  "replica write fence holds")

            # Failover: SIGKILL the primary, promote replica 1 via the
            # CLI, and write through both a direct client and the
            # routing client.
            primary.kill()
            primary.wait(timeout=10)
            promote = subprocess.run(
                run + ["promote", f"127.0.0.1:{rport1}"],
                check=True, env=env, capture_output=True, text=True)
            assert "role primary" in promote.stdout, promote.stdout
            with ServiceClient(port=rport1) as nclient:
                nclient.insert("after-failover", "{__smoke__, s9}")
                stats = nclient.stats()["server"]
                assert stats["role"] == "primary", stats
                assert stats["term"] >= 1, stats
            # The routing client is pointed at the dead primary plus the
            # promoted node (replica 2 is excluded: it tails a dead
            # primary, so its reads are legitimately stale): writes must
            # discover the new primary on their own.
            with ReplicaSetClient([endpoints[0], f"127.0.0.1:{rport1}"],
                                  max_staleness_s=60.0,
                                  failover_timeout_s=20.0) as rsc:
                rsc.insert("after-failover2", "{__smoke__, s9}")
                hits = rsc.query("{__smoke__, s9}")
                assert hits == ["after-failover", "after-failover2"], hits
            print(f"replicate_smoke: promoted :{rport1} "
                  f"(term {stats['term']}), writes fail over")

            # The surviving stale replica still serves reads.
            _proc2, rport2, _rhttp2 = replicas[1]
            with ServiceClient(port=rport2) as sclient:
                got = sclient.query(base_probe)
                assert got[:len(expected0)] == expected0, got

            for _proc, port, _http in replicas:
                with ServiceClient(port=port) as client:
                    client.shutdown()
            for proc, _port, _http in replicas:
                proc.wait(timeout=30)
                assert proc.returncode == 0, proc.stdout.read()
            print("replicate_smoke: replicas drained cleanly")
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
