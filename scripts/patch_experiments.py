#!/usr/bin/env python3
"""Patch EXPERIMENTS.md placeholders from the recorded bench_results run.

One-shot helper used when refreshing EXPERIMENTS.md after a full
``pytest benchmarks/ --benchmark-only`` run: replaces the
``PLANNER_NUMBERS`` / ``BL1_NUMBERS`` / ``M1_NUMBERS`` markers with
tables built from the saved rows.
"""

from __future__ import annotations

import json


def rows(name: str) -> list[dict]:
    with open(f"bench_results/{name}.json") as handle:
        return json.load(handle)


def planner_table() -> str:
    data = rows("planner")
    values = {(r["series"], r["x"]): r["millis"] for r in data}
    strategies = ["selective-first", "text", "bulky-first"]
    lines = ["", "| workload | " + " | ".join(strategies) + " |",
             "|---|---|---|---|"]
    for workload in ("sampled", "branching"):
        cells = [f"{values[(workload, s)]:.1f}" for s in strategies]
        lines.append(f"| {workload} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def bl1_line() -> str:
    values = {r["x"]: r["millis"] for r in rows("bulkload")}
    return (f"in-memory {values['in-memory']:.0f} ms, "
            f"external (10k-posting buffer) {values['external-10k']:.0f} ms, "
            f"external (1k buffer) {values['external-1k']:.0f} ms — "
            f"a {values['external-1k'] / values['in-memory']:.1f}x ceiling "
            f"at the tightest budget.")


def m1_table() -> str:
    values = {r["x"]: r["millis"] for r in rows("models")}
    order = ["set-index", "bag-filter-verify", "bag-naive",
             "seq-filter-verify", "seq-naive"]
    lines = ["", "| mode | ms |", "|---|---|"]
    for mode in order:
        lines.append(f"| {mode} | {values[mode]:.1f} |")
    return "\n".join(lines) + "\n"


def main() -> int:
    with open("EXPERIMENTS.md") as handle:
        text = handle.read()
    text = text.replace("PLANNER_NUMBERS", planner_table())
    text = text.replace("BL1_NUMBERS", bl1_line())
    text = text.replace("M1_NUMBERS", m1_table())
    with open("EXPERIMENTS.md", "w") as handle:
        handle.write(text)
    print("EXPERIMENTS.md placeholders patched")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
