"""CI smoke test for the query service: serve, mutate, drain, reopen.

Exercises the full serving stack the way an operator would:

1. generate a collection and build a disk index,
2. start ``nestcontain serve`` (with its HTTP gateway) as a real
   subprocess,
3. run a mixed workload (concurrent queries racing inserts and a
   delete) through the blocking client, asserting *exact* answers,
4. hit the same server over every wire -- binary (default), JSON, a
   pipelined submit/drain burst, and one HTTP-gateway request -- and
   assert byte-identical answers to an in-process open,
5. drain the server via the ``shutdown`` op and wait for a clean exit,
6. reopen the index: the insert must be durable and the write-ahead
   log must have nothing to replay (the drain checkpointed it).

Exit status 0 means every step held.  Run from the repo root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import NestedSetIndex  # noqa: E402
from repro.data.io import save_collection_file  # noqa: E402
from repro.bench.workloads import generate_dataset  # noqa: E402
from repro.server import ServiceClient  # noqa: E402


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as workdir:
        collection = os.path.join(workdir, "smoke.nsets")
        index_path = os.path.join(workdir, "smoke.idx")
        records = list(generate_dataset("uniform-wide", 150, seed=5))
        save_collection_file(records, collection)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        run = [sys.executable, "-m", "repro.cli"]
        subprocess.run(run + ["index", collection, "-o", index_path],
                       check=True, env=env)

        server = subprocess.Popen(
            run + ["serve", index_path, "--port", "0",
                   "--http-port", "0",
                   "--batch-window-ms", "1", "--workers", "4"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            banner = server.stdout.readline()
            match = re.search(r":(\d+) \(", banner)
            assert match, f"no port in server banner: {banner!r}"
            port = int(match.group(1))
            gateway_banner = server.stdout.readline()
            gw_match = re.search(r":(\d+)\s*$", gateway_banner)
            assert gw_match, ("no port in gateway banner: "
                              f"{gateway_banner!r}")
            http_port = int(gw_match.group(1))
            print(f"serve_smoke: server up on port {port}, "
                  f"http gateway on {http_port}")

            # Ground truth from a separate in-process open (read-only).
            with NestedSetIndex.open("diskhash", index_path) as truth:
                probe = "{%s}" % sorted(records[0][1].atoms)[0]
                expected = truth.query(probe)
            assert expected, "probe query must have matches"

            errors: list[BaseException] = []

            def reader() -> None:
                try:
                    with ServiceClient(port=port) as client:
                        for _ in range(30):
                            got = client.query(probe)
                            assert got[:len(expected)] == expected, (
                                f"served {got!r} lost {expected!r}")
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            readers = [threading.Thread(target=reader)
                       for _ in range(6)]
            for thread in readers:
                thread.start()
            with ServiceClient(port=port) as writer:
                for i in range(5):
                    value = "{__smoke__, %s}" % (
                        sorted(records[0][1].atoms)[0])
                    writer.insert(f"smoke{i}", value)
                assert writer.delete("smoke0") is True
                smoke_hits = writer.query("{__smoke__}")
            for thread in readers:
                thread.join()
            assert not errors, errors[:1]
            assert smoke_hits == [f"smoke{i}" for i in range(1, 5)], (
                f"mutations not visible: {smoke_hits!r}")
            print("serve_smoke: mixed workload exact "
                  f"({len(readers)} readers, 5 inserts, 1 delete)")

            # Every wire, same answers.  Ground truth re-read after the
            # mutations above so all paths chase the same snapshot.
            with NestedSetIndex.open("diskhash", index_path) as truth:
                probes = [probe, "{__smoke__}"]
                wire_truth = [truth.query(q) for q in probes]
            with ServiceClient(port=port) as binary_client:
                assert binary_client.wire == "binary"
                assert [binary_client.query(q)
                        for q in probes] == wire_truth
                ids = [binary_client.submit({"op": "query", "query": q})
                       for q in probes for _ in range(4)]
                drained = binary_client.drain()
                assert [drained[i] for i in ids] == \
                    [t for t in wire_truth for _ in range(4)]
                assert binary_client.query_pipelined(
                    probes * 4, window=4) == wire_truth * 4
            with ServiceClient(port=port, wire="json") as json_client:
                assert [json_client.query(q)
                        for q in probes] == wire_truth
            for query, expected_hits in zip(probes, wire_truth):
                body = json.dumps({"query": query}).encode("utf-8")
                http_request = urllib.request.Request(
                    f"http://127.0.0.1:{http_port}/query", data=body,
                    method="POST")
                with urllib.request.urlopen(http_request,
                                            timeout=10) as reply:
                    payload = json.load(reply)
                assert payload["ok"] and \
                    payload["result"] == expected_hits, payload
            print("serve_smoke: binary, pipelined, json, and http "
                  "answers identical to in-process")

            with ServiceClient(port=port) as client:
                stats = client.stats()["server"]
                assert stats["requests_total"] > 0
                client.shutdown()
            server.wait(timeout=30)
            assert server.returncode == 0, server.stdout.read()
            print("serve_smoke: drained cleanly")
        finally:
            if server.poll() is None:
                server.kill()

        with NestedSetIndex.open("diskhash", index_path) as reopened:
            wal = reopened.stats()["wal"]
            assert wal["pending_groups"] == 0, wal
            assert wal["recovered_on_open"] == 0, wal
            hits = reopened.query("{__smoke__}")
            assert hits == [f"smoke{i}" for i in range(1, 5)], hits
        print("serve_smoke: reopen clean (WAL checkpointed, "
              "mutations durable)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
