#!/usr/bin/env python3
"""Print EXPERIMENTS.md-ready markdown tables from bench_results/*.json.

Helper for keeping EXPERIMENTS.md in sync with the latest recorded run:
run the benchmarks, then run this script and paste the tables it prints
into the matching sections.
"""

from __future__ import annotations

import json
import os
import sys


def load(name: str) -> list[dict]:
    path = os.path.join("bench_results", f"{name}.json")
    with open(path) as handle:
        return json.load(handle)


def pivot(rows: list[dict]) -> tuple[list, list, dict]:
    xs: list = []
    series: list[str] = []
    for row in rows:
        if row["x"] not in xs:
            xs.append(row["x"])
        if row["series"] not in series:
            series.append(row["series"])
    values = {(row["series"], row["x"]): row["millis"] for row in rows}
    return xs, series, values


def table(name: str, x_label: str = "size") -> str:
    xs, series, values = pivot(load(name))
    header = f"| {x_label} | " + " | ".join(series) + " |"
    rule = "|" + "---|" * (len(series) + 1)
    lines = [f"### {name}", header, rule]
    for x in xs:
        cells = []
        for s in series:
            value = values.get((s, x))
            cells.append(f"{value:.1f}" if value is not None else "-")
        lines.append(f"| {x} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main() -> int:
    names = sys.argv[1:]
    if not names:
        names = sorted(os.path.splitext(fn)[0]
                       for fn in os.listdir("bench_results")
                       if fn.endswith(".json"))
    for name in names:
        print(table(name))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
